// Package serve is the network-facing serving layer over the simulated
// accelerator: the piece that turns the offline benchmark harness into
// the fleet-scale RPC shape the paper motivates (§1: protobuf ser/deser
// burns >5% of fleet cycles precisely because it sits on the RPC path).
//
// A Server hosts a catalog of named schemas and accepts
// serialize/deserialize requests — length-prefixed frames over TCP, or
// direct calls through the in-process client. Concurrent requests for
// the same (schema, operation) are folded into accelerator batches (the
// §4.4.1 completion-barrier pattern) and executed on core.Systems
// recycled through a core.Pool. Production controls are built in:
//
//   - Admission control: a bounded queue; requests beyond its capacity
//     are shed immediately with StatusShed rather than queued without
//     bound.
//   - Deadlines: every request carries a budget (or inherits the server
//     default); requests that expire while queued are answered with
//     StatusDeadline instead of wasting accelerator batches.
//   - Graceful degradation: when a batch fails on the accelerator — the
//     fault framework poisoned the System, or a genuine model error
//     surfaced — the affected requests complete on the host's software
//     codec and are answered with FellBack set. Injected faults that the
//     core's transactional dispatch rode out (retry or in-simulation
//     software fallback) never reach this layer; they only show up in
//     the resilience counters and the per-response fault flag.
//
// Functional responses are byte-identical to the pure-software codec in
// every case — fault-free, retried, fallen back — which the chaos tests
// assert request by request.
package serve

import "time"

// Op selects the operation a request asks for.
type Op uint8

// Operations.
const (
	OpDeserialize Op = iota
	OpSerialize
)

func (o Op) String() string {
	if o == OpSerialize {
		return "ser"
	}
	return "deser"
}

// Status classifies a response.
type Status uint8

// Response statuses.
const (
	// StatusOK: the operation completed; Payload carries the result.
	StatusOK Status = iota
	// StatusShed: the admission queue was full (or the server is
	// shutting down) and the request was load-shed without being run.
	StatusShed
	// StatusDeadline: the request's deadline expired before a batch
	// picked it up.
	StatusDeadline
	// StatusBadRequest: unknown schema, oversized or malformed payload.
	StatusBadRequest
	// StatusError: an internal error; Payload carries the message.
	StatusError
	// StatusThrottled: the client exceeded its admission-control token
	// budget (elements chain); distinct from StatusShed so clients can
	// tell "server full" from "you specifically are over rate".
	StatusThrottled
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusShed:
		return "shed"
	case StatusDeadline:
		return "deadline"
	case StatusBadRequest:
		return "bad_request"
	case StatusError:
		return "error"
	case StatusThrottled:
		return "throttled"
	default:
		return "status(?)"
	}
}

// Request is one serialize or deserialize call.
//
// The payload is wire-format bytes for both operations: a deserialize
// request carries the buffer to parse and is answered with the canonical
// re-serialization of the object the accelerator materialized (proving
// the parse, in a byte-comparable form); a serialize request carries the
// wire-format description of the object to build and is answered with
// the bytes the accelerator's serializer produced.
type Request struct {
	ID      uint64        // client-chosen correlation id, echoed in the response
	Op      Op            // operation
	Schema  string        // catalog entry name
	Timeout time.Duration // per-request deadline budget; 0 inherits the server default
	Payload []byte        // wire-format input
}

// Response answers one Request.
type Response struct {
	ID       uint64  // Request.ID echoed back
	Status   Status  // outcome
	FellBack bool    // completed by a software codec path (core fallback or server degradation)
	Cycles   float64 // simulated accelerator cycles attributed to this request (0 when served in software by the server)
	Payload  []byte  // StatusOK: result bytes; otherwise a diagnostic message
}
