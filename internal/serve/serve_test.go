package serve

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"protoacc/internal/faults"
)

// testOptions keeps test servers small: modest batches, small payloads,
// tight System memory. The default deadline is raised far above any
// race-detector slowdown so only the explicit-timeout admission test
// exercises deadline expiry.
func testOptions() Options {
	return Options{
		MaxBatch:    4,
		QueueDepth:  64,
		Workers:     2,
		MaxPayload:  8 << 10,
		BatchWindow: 100 * time.Microsecond,
		Deadline:    time.Minute,
	}
}

// sampleRequests builds a deterministic mixed request list: both ops over
// every catalog schema.
func sampleRequests(c *Catalog, perSchema int) []Request {
	var reqs []Request
	for _, name := range c.Names() {
		e := c.Lookup(name)
		for i := 0; i < perSchema; i++ {
			op := OpDeserialize
			if i%2 == 1 {
				op = OpSerialize
			}
			reqs = append(reqs, Request{Op: op, Schema: name, Payload: e.SamplePayload(i)})
		}
	}
	return reqs
}

// Every OK response over a canonical sample payload must be byte-identical
// to the payload, for both operations — the serving layer's functional
// contract.
func TestServeRoundTrip(t *testing.T) {
	srv, err := NewServer(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := srv.InProc()
	for _, name := range srv.Catalog().Names() {
		e := srv.Catalog().Lookup(name)
		for _, op := range []Op{OpDeserialize, OpSerialize} {
			payload := e.SamplePayload(3)
			resp, err := client.Do(Request{Op: op, Schema: name, Payload: payload})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, op, err)
			}
			if resp.Status != StatusOK {
				t.Fatalf("%s/%v: status %v: %s", name, op, resp.Status, resp.Payload)
			}
			if !bytes.Equal(resp.Payload, payload) {
				t.Errorf("%s/%v: response diverges from canonical payload", name, op)
			}
			if resp.FellBack {
				t.Errorf("%s/%v: fault-free request fell back to software", name, op)
			}
			if resp.Cycles <= 0 {
				t.Errorf("%s/%v: no accelerator cycles attributed", name, op)
			}
		}
	}
}

// runBatched drives one server with the given request list through
// preformed batches and returns responses plus the quiescent telemetry
// snapshot.
func runBatched(t *testing.T, opts Options, reqs []Request) ([]Response, map[string]float64) {
	t.Helper()
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	client := srv.InProc()
	resps, err := client.DoBatch(append([]Request(nil), reqs...))
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	srv.Close()
	snap := srv.TelemetrySnapshot()
	counters := make(map[string]float64, snap.Len())
	for _, sm := range snap.Samples() {
		counters[sm.Name] = sm.Value
	}
	return resps, counters
}

// compareRuns asserts two runs produced bitwise-identical responses and
// telemetry.
func compareRuns(t *testing.T, labelA, labelB string, a, b []Response, ca, cb map[string]float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("response counts differ: %s=%d %s=%d", labelA, len(a), labelB, len(b))
	}
	for i := range a {
		if a[i].Status != b[i].Status || a[i].FellBack != b[i].FellBack {
			t.Errorf("response %d: status/fallback differ: %s=%+v %s=%+v", i, labelA, a[i], labelB, b[i])
		}
		if !bytes.Equal(a[i].Payload, b[i].Payload) {
			t.Errorf("response %d: payload bytes differ between %s and %s", i, labelA, labelB)
		}
		if a[i].Cycles != b[i].Cycles {
			t.Errorf("response %d: cycles differ: %s=%v %s=%v", i, labelA, a[i].Cycles, labelB, b[i].Cycles)
		}
	}
	if len(ca) != len(cb) {
		t.Fatalf("telemetry shapes differ: %s=%d counters, %s=%d", labelA, len(ca), labelB, len(cb))
	}
	for name, va := range ca {
		vb, ok := cb[name]
		if !ok {
			t.Errorf("counter %s present in %s, missing in %s", name, labelA, labelB)
			continue
		}
		if name == "serve/queue/capacity" {
			continue // config echo, not a measurement
		}
		if va != vb {
			t.Errorf("counter %s: %s=%v %s=%v", name, labelA, va, labelB, vb)
		}
	}
}

// A single-worker server and a multi-worker server must produce bitwise
// identical responses and telemetry for the same preformed batches —
// parallel batch execution is an implementation detail, not an observable.
func TestServeSerialVsParallelEquivalence(t *testing.T) {
	reqs := sampleRequests(DefaultCatalog(), 8)
	serialOpts := testOptions()
	serialOpts.Workers = 1
	parallelOpts := testOptions()
	parallelOpts.Workers = 4
	sa, ca := runBatched(t, serialOpts, reqs)
	sb, cb := runBatched(t, parallelOpts, reqs)
	compareRuns(t, "serial", "parallel", sa, sb, ca, cb)
}

// A pooled server (recycled Systems) and a fresh-System-per-batch server
// must also be indistinguishable: ResetAll's bitwise-equivalence guarantee
// extends through the serving path.
func TestServePooledVsFreshEquivalence(t *testing.T) {
	reqs := sampleRequests(DefaultCatalog(), 8)
	pooled := testOptions()
	pooled.Workers = 1
	fresh := testOptions()
	fresh.Workers = 1
	fresh.Fresh = true
	sa, ca := runBatched(t, pooled, reqs)
	sb, cb := runBatched(t, fresh, reqs)
	compareRuns(t, "pooled", "fresh", sa, sb, ca, cb)
}

// Under injected faults every response must still be byte-identical to the
// canonical software-codec answer; the recovery paths (retry, core
// fallback, server degradation) may only show up in flags and counters.
func TestServeChaos(t *testing.T) {
	reqs := sampleRequests(DefaultCatalog(), 10)
	opts := testOptions()
	opts.Faults = faults.Config{Enabled: true, Seed: 1234, Rate: 0.05}
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	client := srv.InProc()
	resps, err := client.DoBatch(reqs)
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	srv.Close()
	fellBack := 0
	for i, resp := range resps {
		if resp.Status != StatusOK {
			t.Fatalf("request %d: status %v under faults: %s", i, resp.Status, resp.Payload)
		}
		if !bytes.Equal(resp.Payload, reqs[i].Payload) {
			t.Errorf("request %d: response diverges from software codec under faults", i)
		}
		if resp.FellBack {
			fellBack++
		}
	}
	snap := srv.TelemetrySnapshot()
	injected, _ := snap.Get("faults/arena/injected")
	var total float64
	for _, sm := range snap.Samples() {
		if len(sm.Name) > 7 && sm.Name[:7] == "faults/" {
			total += sm.Value
		}
	}
	if total == 0 {
		t.Errorf("fault schedule at rate 0.05 never fired (arena injected=%v)", injected)
	}
	accelFB, _ := snap.Get("serve/fallbacks/accel")
	serverFB, _ := snap.Get("serve/fallbacks/server")
	if fellBack > 0 && accelFB+serverFB == 0 {
		t.Errorf("responses flagged FellBack but fallback counters are zero")
	}
	if int(accelFB+serverFB) != fellBack {
		t.Errorf("fallback counters (%v accel + %v server) disagree with %d flagged responses",
			accelFB, serverFB, fellBack)
	}
}

// Admission control: unknown schemas, oversized and malformed payloads are
// rejected; expired deadlines answer StatusDeadline; a closed server sheds.
func TestServeAdmission(t *testing.T) {
	opts := testOptions()
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	client := srv.InProc()
	entry := srv.Catalog().Lookup("varint")

	resp, _ := client.Do(Request{Op: OpDeserialize, Schema: "nope", Payload: entry.SamplePayload(0)})
	if resp.Status != StatusBadRequest {
		t.Errorf("unknown schema: status %v, want bad_request", resp.Status)
	}
	resp, _ = client.Do(Request{Op: OpDeserialize, Schema: "varint", Payload: make([]byte, opts.MaxPayload+1)})
	if resp.Status != StatusBadRequest {
		t.Errorf("oversized payload: status %v, want bad_request", resp.Status)
	}
	resp, _ = client.Do(Request{Op: OpDeserialize, Schema: "varint", Payload: []byte{0xff, 0xff, 0xff}})
	if resp.Status != StatusBadRequest {
		t.Errorf("malformed payload: status %v, want bad_request", resp.Status)
	}
	resp, _ = client.Do(Request{Op: Op(9), Schema: "varint", Payload: entry.SamplePayload(0)})
	if resp.Status != StatusBadRequest {
		t.Errorf("unknown op: status %v, want bad_request", resp.Status)
	}
	resp, _ = client.Do(Request{Op: OpDeserialize, Schema: "varint", Timeout: time.Nanosecond, Payload: entry.SamplePayload(0)})
	if resp.Status != StatusDeadline {
		t.Errorf("expired budget: status %v, want deadline", resp.Status)
	}

	srv.Close()
	resp, _ = client.Do(Request{Op: OpDeserialize, Schema: "varint", Payload: entry.SamplePayload(0)})
	if resp.Status != StatusShed {
		t.Errorf("closed server: status %v, want shed", resp.Status)
	}
	snap := srv.TelemetrySnapshot()
	if v, _ := snap.Get("serve/responses/bad_request"); v != 4 {
		t.Errorf("bad_request counter = %v, want 4", v)
	}
	if v, _ := snap.Get("serve/responses/deadline"); v != 1 {
		t.Errorf("deadline counter = %v, want 1", v)
	}
	if v, _ := snap.Get("serve/responses/shed"); v != 1 {
		t.Errorf("shed counter = %v, want 1", v)
	}
}

// A saturated single-worker server with a depth-1 queue must shed load
// rather than queue without bound.
func TestServeLoadShedding(t *testing.T) {
	opts := testOptions()
	opts.Workers = 1
	opts.QueueDepth = 1
	opts.MaxBatch = 1
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := srv.InProc()
	entry := srv.Catalog().Lookup("varint")
	const n = 64
	var wg sync.WaitGroup
	shed := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := client.Do(Request{Op: OpDeserialize, Schema: "varint", Payload: entry.SamplePayload(i)})
			shed[i] = resp.Status == StatusShed
		}(i)
	}
	wg.Wait()
	nShed := 0
	for _, s := range shed {
		if s {
			nShed++
		}
	}
	if nShed == 0 {
		t.Error("64 concurrent requests against a depth-1 queue shed nothing")
	}
	if nShed == n {
		t.Error("every request was shed; the server did no work at all")
	}
}

// The wire protocol round-trips requests and responses and rejects
// truncated or mis-versioned frames.
func TestProtocolRoundTrip(t *testing.T) {
	req := Request{ID: 42, Op: OpSerialize, Schema: "mixed", Timeout: 250 * time.Millisecond, Payload: []byte{1, 2, 3}}
	got, err := parseRequest(appendRequest(nil, &req))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != req.ID || got.Op != req.Op || got.Schema != req.Schema ||
		got.Timeout != req.Timeout || !bytes.Equal(got.Payload, req.Payload) {
		t.Fatalf("request round-trip: got %+v want %+v", got, req)
	}

	resp := Response{ID: 42, Status: StatusOK, FellBack: true, Cycles: 123.5, Payload: []byte{9, 8}}
	rgot, err := parseResponse(appendResponse(nil, &resp))
	if err != nil {
		t.Fatal(err)
	}
	if rgot.ID != resp.ID || rgot.Status != resp.Status || rgot.FellBack != resp.FellBack ||
		rgot.Cycles != resp.Cycles || !bytes.Equal(rgot.Payload, resp.Payload) {
		t.Fatalf("response round-trip: got %+v want %+v", rgot, resp)
	}

	if _, err := parseRequest(nil); err == nil {
		t.Error("empty request body accepted")
	}
	if _, err := parseRequest([]byte{99, 0, 1}); err == nil {
		t.Error("wrong protocol version accepted")
	}
	if _, err := parseRequest([]byte{protocolVersion, 7, 1}); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := parseResponse([]byte{protocolVersion, 0}); err == nil {
		t.Error("truncated response accepted")
	}

	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	body, err := readFrame(&buf, maxFrame)
	if err != nil || string(body) != "hello" {
		t.Fatalf("frame round-trip: %q %v", body, err)
	}
	if _, err := readFrame(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff}), maxFrame); err == nil {
		t.Error("oversized frame announcement accepted")
	}
}

// startTCP starts a server on a loopback listener and returns its address.
func startTCP(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return srv, ln.Addr().String()
}

// The TCP transport must carry the same contract as the in-process path,
// including pipelined concurrent requests on one connection.
func TestServeTCP(t *testing.T) {
	srv, addr := startTCP(t, testOptions())
	defer srv.Close()
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	entry := srv.Catalog().Lookup("mixed")
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := entry.SamplePayload(i)
			op := OpDeserialize
			if i%2 == 1 {
				op = OpSerialize
			}
			resp, err := conn.Do(Request{Op: op, Schema: "mixed", Payload: payload})
			if err != nil {
				errs[i] = err
				return
			}
			if resp.Status != StatusOK {
				errs[i] = errResp(resp)
				return
			}
			if !bytes.Equal(resp.Payload, payload) {
				errs[i] = errDiverge(i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("request %d: %v", i, err)
		}
	}
}

// protoaccd under chaos, over the real transport: injected faults must not
// leak through the wire — every TCP response stays byte-identical to the
// software codec.
func TestServeTCPChaos(t *testing.T) {
	opts := testOptions()
	opts.Faults = faults.Config{Enabled: true, Seed: 77, Rate: 0.05}
	srv, addr := startTCP(t, opts)
	defer srv.Close()
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, name := range srv.Catalog().Names() {
		e := srv.Catalog().Lookup(name)
		for i := 0; i < 12; i++ {
			payload := e.SamplePayload(i)
			op := OpDeserialize
			if i%2 == 1 {
				op = OpSerialize
			}
			resp, err := conn.Do(Request{Op: op, Schema: name, Payload: payload})
			if err != nil {
				t.Fatalf("%s/%d: %v", name, i, err)
			}
			if resp.Status != StatusOK {
				t.Fatalf("%s/%d: status %v under faults: %s", name, i, resp.Status, resp.Payload)
			}
			if !bytes.Equal(resp.Payload, payload) {
				t.Errorf("%s/%d: response diverges under faults (fellBack=%v)", name, i, resp.FellBack)
			}
		}
	}
}

type errResp Response

func (e errResp) Error() string {
	return "status " + Response(e).Status.String() + ": " + string(Response(e).Payload)
}

type errDiverge int

func (e errDiverge) Error() string { return "response diverges from canonical payload" }
