package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"protoacc/internal/core"
	"protoacc/internal/faults"
	"protoacc/internal/pb/codec"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/telemetry"
)

// Options configures a Server. The zero value of any field selects the
// default noted on it.
type Options struct {
	// Catalog of hosted schemas; nil selects DefaultCatalog.
	Catalog *Catalog

	// MaxBatch caps requests folded into one accelerator batch (default 16).
	MaxBatch int

	// BatchWindow is how long the dispatcher holds an under-full batch open
	// waiting for coalescing partners (default 200µs).
	BatchWindow time.Duration

	// QueueDepth bounds the admission queue; requests beyond it are shed
	// (default 1024).
	QueueDepth int

	// Workers is the number of concurrent batch executors (default
	// GOMAXPROCS).
	Workers int

	// MaxPayload bounds a request payload in bytes (default 64KiB).
	MaxPayload int

	// Deadline is the default per-request budget when Request.Timeout is
	// zero (default 1s).
	Deadline time.Duration

	// Faults selects a deterministic fault-injection schedule for the
	// accelerator Systems (the chaos tests drive this).
	Faults faults.Config

	// Fresh builds a fresh System per batch instead of recycling through
	// the pool — the reference arm of the pooled-vs-fresh equivalence
	// tests.
	Fresh bool
}

func (o Options) withDefaults() Options {
	if o.Catalog == nil {
		o.Catalog = DefaultCatalog()
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 16
	}
	if o.BatchWindow <= 0 {
		o.BatchWindow = 200 * time.Microsecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxPayload <= 0 {
		o.MaxPayload = 64 << 10
	}
	if o.Deadline <= 0 {
		o.Deadline = time.Second
	}
	return o
}

// serveConfig sizes the accelerated System a batch executor runs on. The
// shape mirrors the chaos harness's sizing: wire inputs and materialized
// objects share Static, and heap, arena, and serializer output must each
// hold a worst-case batch (MaxBatch × MaxPayload).
func serveConfig(o Options) core.Config {
	cfg := core.DefaultConfig(core.KindAccel)
	cfg.Faults = o.Faults
	const floor = 16 << 20
	const quantum = 1 << 20
	need := uint64(o.MaxBatch) * uint64(o.MaxPayload)
	q := (need + quantum - 1) &^ (quantum - 1)
	cfg.StaticSize = q*5 + floor
	cfg.HeapSize = q*4 + floor
	cfg.ArenaSize = q*4 + floor
	cfg.OutSize = q + floor
	return cfg
}

// batchKey groups coalescible requests: one accelerator batch holds one
// operation over one schema.
type batchKey struct {
	schema string
	op     Op
}

// pending is an admitted request waiting for (or inside) a batch.
type pending struct {
	req      Request
	entry    *Entry
	msg      *dynamic.Message // payload parsed by the software codec at admission
	deadline time.Time
	resp     chan Response // buffered(1); receives exactly one Response
}

// batchJob is one unit on the admission queue: a single admitted request,
// or a preformed batch (the in-process client's DoBatch) that must run as
// one accelerator batch regardless of what else is in flight.
type batchJob struct {
	key       batchKey
	pendings  []*pending
	preformed bool
}

// Server hosts a catalog and executes serve requests on pooled
// accelerator Systems.
type Server struct {
	opts Options
	cfg  core.Config
	pool *core.Pool

	queue chan batchJob
	work  chan batchJob

	admitMu sync.RWMutex
	closed  bool

	wg sync.WaitGroup

	connMu    sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}

	mu     sync.Mutex
	stats  stats
	sysAgg telemetry.Aggregate
}

// stats is the serving layer's own counter group. All counters are
// integral-valued, so cross-worker accumulation order cannot perturb the
// totals — a serial run and a parallel run of the same batches snapshot
// identically.
type stats struct {
	reqDeser, reqSer                 uint64
	ok, shed, deadline, bad, errored uint64
	bytesIn, bytesOut                uint64
	batches, batchRequests           uint64
	accelFallbacks, serverFallbacks  uint64
	retryEvents                      uint64
	cycles                           telemetry.Attribution
}

// NewServer builds and starts a Server (dispatcher plus worker pool).
func NewServer(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if err := opts.Faults.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		opts:      opts,
		cfg:       serveConfig(opts),
		pool:      core.NewPool(0),
		queue:     make(chan batchJob, opts.QueueDepth),
		work:      make(chan batchJob),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.dispatch()
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.work {
				s.runBatch(job)
			}
		}()
	}
	return s, nil
}

// Catalog returns the hosted catalog.
func (s *Server) Catalog() *Catalog { return s.opts.Catalog }

// Workers returns the number of batch executors (for stats manifests).
func (s *Server) Workers() int { return s.opts.Workers }

// ConfigFingerprint hashes the System configuration batches run on,
// identifying the simulated-hardware parameter set behind a stats
// artifact (same role as the bench harness's fingerprint).
func (s *Server) ConfigFingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "%+v\n", s.cfg)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// submit admits one request. The returned channel receives exactly one
// Response; rejected requests (shed, bad) are answered without queueing.
func (s *Server) submit(req Request) <-chan Response {
	p, ok := s.admit(req)
	if !ok {
		return p.resp
	}
	job := batchJob{key: batchKey{schema: req.Schema, op: req.Op}, pendings: []*pending{p}}
	s.admitMu.RLock()
	if s.closed {
		s.admitMu.RUnlock()
		s.respond(p, Response{Status: StatusShed, Payload: []byte("server closing")})
		return p.resp
	}
	select {
	case s.queue <- job:
	default:
		s.respond(p, Response{Status: StatusShed, Payload: []byte("admission queue full")})
	}
	s.admitMu.RUnlock()
	return p.resp
}

// submitPreformed admits a batch that must execute as one accelerator
// batch. All requests must share a schema and op and the batch must fit
// MaxBatch; every pending is answered through its own channel.
func (s *Server) submitPreformed(pendings []*pending, key batchKey) {
	job := batchJob{key: key, pendings: pendings, preformed: true}
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.closed {
		for _, p := range pendings {
			s.respond(p, Response{Status: StatusShed, Payload: []byte("server closing")})
		}
		return
	}
	select {
	case s.queue <- job:
	default:
		for _, p := range pendings {
			s.respond(p, Response{Status: StatusShed, Payload: []byte("admission queue full")})
		}
	}
}

// admit validates a request. ok means the pending is ready to queue; on
// validation failure the pending has already been answered.
func (s *Server) admit(req Request) (p *pending, ok bool) {
	p = &pending{req: req, resp: make(chan Response, 1)}
	s.mu.Lock()
	if req.Op == OpSerialize {
		s.stats.reqSer++
	} else {
		s.stats.reqDeser++
	}
	s.stats.bytesIn += uint64(len(req.Payload))
	s.mu.Unlock()

	if req.Op != OpDeserialize && req.Op != OpSerialize {
		s.respond(p, Response{Status: StatusBadRequest, Payload: []byte(fmt.Sprintf("unknown op %d", req.Op))})
		return p, false
	}
	entry := s.opts.Catalog.Lookup(req.Schema)
	if entry == nil {
		s.respond(p, Response{Status: StatusBadRequest, Payload: []byte("unknown schema " + req.Schema)})
		return p, false
	}
	if len(req.Payload) > s.opts.MaxPayload {
		s.respond(p, Response{Status: StatusBadRequest,
			Payload: []byte(fmt.Sprintf("payload %d bytes exceeds limit %d", len(req.Payload), s.opts.MaxPayload))})
		return p, false
	}
	// Both operations take wire bytes; parsing them with the software codec
	// up front rejects malformed payloads before they reach the accelerator
	// and keeps the software answer at hand for graceful degradation.
	msg, err := codec.Unmarshal(entry.Type, req.Payload)
	if err != nil {
		s.respond(p, Response{Status: StatusBadRequest, Payload: []byte("malformed payload: " + err.Error())})
		return p, false
	}
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.opts.Deadline
	}
	p.entry = entry
	p.msg = msg
	p.deadline = time.Now().Add(timeout)
	return p, true
}

// respond answers a pending exactly once and records the outcome.
func (s *Server) respond(p *pending, resp Response) {
	resp.ID = p.req.ID
	s.mu.Lock()
	switch resp.Status {
	case StatusOK:
		s.stats.ok++
		s.stats.bytesOut += uint64(len(resp.Payload))
	case StatusShed:
		s.stats.shed++
	case StatusDeadline:
		s.stats.deadline++
	case StatusBadRequest:
		s.stats.bad++
	default:
		s.stats.errored++
	}
	s.mu.Unlock()
	p.resp <- resp
}

// dispatch coalesces queued singles into per-(schema, op) batches, flushing
// a batch when it reaches MaxBatch or its window expires; preformed batches
// pass through untouched. Runs until the queue closes, then flushes every
// open batch and closes the work channel.
func (s *Server) dispatch() {
	defer s.wg.Done()
	type openBatch struct {
		pendings []*pending
		flushAt  time.Time
	}
	groups := make(map[batchKey]*openBatch)
	var timer *time.Timer
	var timerC <-chan time.Time

	rearm := func() {
		var earliest time.Time
		for _, g := range groups {
			if earliest.IsZero() || g.flushAt.Before(earliest) {
				earliest = g.flushAt
			}
		}
		if earliest.IsZero() {
			timerC = nil
			return
		}
		d := time.Until(earliest)
		if d < 0 {
			d = 0
		}
		if timer == nil {
			timer = time.NewTimer(d)
		} else {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(d)
		}
		timerC = timer.C
	}
	flush := func(k batchKey) {
		g := groups[k]
		delete(groups, k)
		s.work <- batchJob{key: k, pendings: g.pendings}
	}

	for {
		select {
		case job, ok := <-s.queue:
			if !ok {
				for k := range groups {
					flush(k)
				}
				close(s.work)
				return
			}
			if job.preformed {
				s.work <- job
				continue
			}
			g := groups[job.key]
			if g == nil {
				g = &openBatch{flushAt: time.Now().Add(s.opts.BatchWindow)}
				groups[job.key] = g
			}
			g.pendings = append(g.pendings, job.pendings...)
			if len(g.pendings) >= s.opts.MaxBatch {
				flush(job.key)
			}
			rearm()
		case <-timerC:
			now := time.Now()
			for k, g := range groups {
				if !g.flushAt.After(now) {
					flush(k)
				}
			}
			rearm()
		}
	}
}

// runBatch executes one batch on an accelerator System: expire overdue
// requests, run the §4.4.1 batch operation, read functional results back,
// and degrade to the software codec when the accelerator path errors out.
func (s *Server) runBatch(job batchJob) {
	live := job.pendings[:0:0]
	now := time.Now()
	for _, p := range job.pendings {
		if p.deadline.Before(now) {
			s.respond(p, Response{Status: StatusDeadline, Payload: []byte("deadline expired in queue")})
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}
	s.mu.Lock()
	s.stats.batches++
	s.stats.batchRequests += uint64(len(live))
	s.mu.Unlock()

	var sys *core.System
	if s.opts.Fresh {
		sys = core.New(s.cfg)
	} else {
		sys = s.pool.Get(s.cfg)
	}
	sys.Telemetry().EnablePerOp(true)
	if err := sys.LoadSchema(live[0].entry.Type); err != nil {
		s.degrade(live, err)
		return
	}
	switch job.key.op {
	case OpSerialize:
		s.runSerialize(sys, live)
	default:
		s.runDeserialize(sys, live)
	}
	s.absorb(sys)
	if !s.opts.Fresh {
		s.pool.Put(sys)
	}
}

// runDeserialize answers each request with the canonical re-serialization
// of the object the accelerator materialized from its payload.
func (s *Server) runDeserialize(sys *core.System, live []*pending) {
	t := live[0].entry.Type
	refs := make([]core.WireRef, len(live))
	for i, p := range live {
		addr, err := sys.WriteWire(p.req.Payload)
		if err != nil {
			s.degrade(live, err)
			return
		}
		refs[i] = core.WireRef{Addr: addr, Len: uint64(len(p.req.Payload))}
	}
	res, objs, err := sys.DeserializeBatch(t, refs)
	if err != nil {
		s.degrade(live, err)
		return
	}
	s.noteBatch(res, len(live))
	perReq := res.Cycles / float64(len(live))
	fellBack := res.Fault != nil && res.Fault.FellBack
	for i, p := range live {
		m, err := sys.ReadMessage(t, objs[i])
		if err != nil {
			s.respond(p, Response{Status: StatusError, Payload: []byte("object readback: " + err.Error())})
			continue
		}
		out, err := codec.Marshal(m)
		if err != nil {
			s.respond(p, Response{Status: StatusError, Payload: []byte("canonical marshal: " + err.Error())})
			continue
		}
		s.respond(p, Response{Status: StatusOK, FellBack: fellBack, Cycles: perReq, Payload: out})
	}
}

// runSerialize answers each request with the wire bytes the accelerator's
// serializer produced for its (pre-parsed) object.
func (s *Server) runSerialize(sys *core.System, live []*pending) {
	t := live[0].entry.Type
	objs := make([]uint64, len(live))
	for i, p := range live {
		addr, err := sys.MaterializeInput(p.msg)
		if err != nil {
			s.degrade(live, err)
			return
		}
		objs[i] = addr
	}
	res, refs, err := sys.SerializeBatch(t, objs)
	if err != nil {
		s.degrade(live, err)
		return
	}
	s.noteBatch(res, len(live))
	perReq := res.Cycles / float64(len(live))
	fellBack := res.Fault != nil && res.Fault.FellBack
	for i, p := range live {
		out, err := sys.ReadWire(refs[i].Addr, refs[i].Len)
		if err != nil {
			s.respond(p, Response{Status: StatusError, Payload: []byte("wire readback: " + err.Error())})
			continue
		}
		s.respond(p, Response{Status: StatusOK, FellBack: fellBack, Cycles: perReq, Payload: out})
	}
}

// degrade completes every live request of a failed batch on the host's
// software codec. Responses stay byte-identical to the accelerator path —
// for both operations the answer is the canonical serialization of the
// request's pre-parsed message — so callers cannot observe which path ran
// except through the FellBack flag.
func (s *Server) degrade(live []*pending, cause error) {
	_ = cause // the per-response FellBack flag and counters carry the signal
	s.mu.Lock()
	s.stats.serverFallbacks += uint64(len(live))
	s.mu.Unlock()
	for _, p := range live {
		out, err := codec.Marshal(p.msg)
		if err != nil {
			s.respond(p, Response{Status: StatusError, Payload: []byte("software codec: " + err.Error())})
			continue
		}
		s.respond(p, Response{Status: StatusOK, FellBack: true, Payload: out})
	}
}

// noteBatch records a completed accelerator batch's resilience and cycle
// attribution counters.
func (s *Server) noteBatch(res core.Result, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if res.Fault != nil {
		s.stats.retryEvents += uint64(res.Fault.Retries)
		if res.Fault.FellBack {
			s.stats.accelFallbacks += uint64(n)
		}
	}
	if res.Telemetry != nil {
		a := res.Telemetry.Attribution
		s.stats.cycles.Total += a.Total
		s.stats.cycles.FSM += a.FSM
		s.stats.cycles.Supply += a.Supply
		s.stats.cycles.Spill += a.Spill
		s.stats.cycles.ADTMiss += a.ADTMiss
	}
}

// absorb folds a batch System's counters into the server-wide aggregate.
// The System came out of Get freshly reset, so its registry snapshot is
// exactly this batch's delta.
func (s *Server) absorb(sys *core.System) {
	snap := sys.Telemetry().Registry.Snapshot()
	s.mu.Lock()
	s.sysAgg.Add(snap)
	s.mu.Unlock()
}

// CollectTelemetry implements telemetry.Collector for the serving group.
func (s *Server) CollectTelemetry(emit func(name string, value float64)) {
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	emit("requests/deser", float64(st.reqDeser))
	emit("requests/ser", float64(st.reqSer))
	emit("responses/ok", float64(st.ok))
	emit("responses/shed", float64(st.shed))
	emit("responses/deadline", float64(st.deadline))
	emit("responses/bad_request", float64(st.bad))
	emit("responses/error", float64(st.errored))
	emit("bytes/in", float64(st.bytesIn))
	emit("bytes/out", float64(st.bytesOut))
	emit("batches", float64(st.batches))
	emit("batch_requests", float64(st.batchRequests))
	emit("fallbacks/accel", float64(st.accelFallbacks))
	emit("fallbacks/server", float64(st.serverFallbacks))
	emit("retries", float64(st.retryEvents))
	emit("queue/capacity", float64(s.opts.QueueDepth))
	emit("queue/depth", float64(len(s.queue)))
	emit("cycles/accel", st.cycles.Total)
	emit("cycles/fsm", st.cycles.FSM)
	emit("cycles/supply", st.cycles.Supply)
	emit("cycles/spill", st.cycles.Spill)
	emit("cycles/adt_stall", st.cycles.ADTMiss)
}

// TelemetrySnapshot merges the serving group with the aggregated per-batch
// System counters, sorted by name. At quiescence (no requests in flight)
// the result is deterministic for a given request set — the basis of the
// serial-vs-parallel equivalence tests.
func (s *Server) TelemetrySnapshot() telemetry.Snapshot {
	var reg telemetry.Registry
	reg.Register("serve", s)
	var agg telemetry.Aggregate
	agg.Add(reg.Snapshot())
	s.mu.Lock()
	agg.Add(s.sysAgg.Snapshot())
	s.mu.Unlock()
	return agg.Snapshot()
}

// Serve accepts connections on ln until the listener closes (Close closes
// every registered listener). Each connection may pipeline requests;
// responses return in completion order, matched by id.
func (s *Server) Serve(ln net.Listener) error {
	s.connMu.Lock()
	s.listeners[ln] = struct{}{}
	s.connMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.connMu.Lock()
			delete(s.listeners, ln)
			s.connMu.Unlock()
			s.admitMu.RLock()
			closed := s.closed
			s.admitMu.RUnlock()
			if closed {
				return nil
			}
			return err
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		go s.serveConn(conn)
	}
}

// serveConn demultiplexes one connection: requests stream in, each is
// submitted, and a per-connection writer lock serializes the response
// frames. A framing or parse error terminates the connection (the peer is
// not speaking the protocol).
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	var writeMu sync.Mutex
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		body, err := readFrame(conn)
		if err != nil {
			return
		}
		req, err := parseRequest(body)
		if err != nil {
			return
		}
		ch := s.submit(req)
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := <-ch
			writeMu.Lock()
			defer writeMu.Unlock()
			writeFrame(conn, appendResponse(nil, &resp))
		}()
	}
}

// Close drains and stops the server: admission closes (new requests are
// shed), queued work completes, workers exit, and open listeners and
// connections are closed.
func (s *Server) Close() {
	s.admitMu.Lock()
	if s.closed {
		s.admitMu.Unlock()
		return
	}
	s.closed = true
	s.admitMu.Unlock()
	close(s.queue)
	s.connMu.Lock()
	for ln := range s.listeners {
		ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
}
