package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"protoacc/internal/core"
	"protoacc/internal/faults"
	"protoacc/internal/pb/codec"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/serve/elements"
	"protoacc/internal/telemetry"
)

// Routing selects how the Server places admitted jobs onto tiles.
type Routing uint8

// Routing policies.
const (
	// RoutePowerOfTwo (default) picks two candidate tiles from a hashed
	// routing sequence and enqueues on the one with the shallower
	// admission queue — the classic load-balancing sweet spot between a
	// global queue and blind round-robin. Idle tiles additionally steal
	// from the deepest queue.
	RoutePowerOfTwo Routing = iota
	// RouteRoundRobin places jobs strictly in submission order and
	// disables work stealing, so batch→tile placement is a pure function
	// of the request sequence. This is the determinism mode the
	// equivalence tests run in: a 1-tile and an N-tile server produce
	// bitwise-identical responses and aggregated counters.
	RouteRoundRobin
)

func (r Routing) String() string {
	if r == RouteRoundRobin {
		return "rr"
	}
	return "p2c"
}

// ParseRouting parses a -routing flag value ("p2c" or "rr").
func ParseRouting(s string) (Routing, error) {
	switch s {
	case "", "p2c":
		return RoutePowerOfTwo, nil
	case "rr":
		return RouteRoundRobin, nil
	default:
		return 0, fmt.Errorf("serve: unknown routing policy %q (want p2c or rr)", s)
	}
}

// CycleMode selects how much cycle-model bookkeeping the serving data
// plane pays per request.
type CycleMode uint8

// Cycle accounting modes.
const (
	// CycleExact (default) runs the full cycle model — pooled System
	// checkout, simulated memory, cache/TLB timing — for every batch.
	// Every response carries its measured per-request cycle share, and
	// counters are exact; this is the mode all determinism and
	// bitwise-equivalence tests run in.
	CycleExact CycleMode = iota
	// CycleSampled decouples the data path from cycle attribution
	// (RPCAcc's split, PAPERS.md): most batches run only the functional
	// serializer — bytes in, bytes out, bit-identical to exact mode — and
	// 1-in-N batches per (schema, op) additionally run the full cycle
	// model. Telemetry extrapolates the sampled cycle counters to the
	// full request population and tags the snapshot with provenance
	// counters (serve/cycle_sample_rate, serve/cycle_sampled_requests,
	// serve/cycle_extrapolated).
	CycleSampled
)

func (m CycleMode) String() string {
	if m == CycleSampled {
		return "sampled"
	}
	return "exact"
}

// ParseCycleMode parses a -cycle-mode flag value ("exact" or "sampled").
func ParseCycleMode(s string) (CycleMode, error) {
	switch s {
	case "", "exact":
		return CycleExact, nil
	case "sampled":
		return CycleSampled, nil
	default:
		return 0, fmt.Errorf("serve: unknown cycle mode %q (want exact or sampled)", s)
	}
}

// Options configures a Server. The zero value of any field selects the
// default noted on it.
type Options struct {
	// Catalog of hosted schemas; nil selects DefaultCatalog.
	Catalog *Catalog

	// Tiles is the number of independent accelerator tiles — each with
	// its own System pool, admission queue, dispatcher, and executors —
	// behind the router (default 1).
	Tiles int

	// Routing places admitted jobs onto tiles (default RoutePowerOfTwo;
	// RouteRoundRobin is the deterministic mode).
	Routing Routing

	// FaultTiles restricts the fault-injection schedule to the listed
	// tile ids; nil applies Faults to every tile. The chaos tests use
	// this to show a poisoned tile degrading alone.
	FaultTiles []int

	// MaxBatch caps requests folded into one accelerator batch (default 16).
	MaxBatch int

	// BatchWindow is how long a tile's dispatcher holds an under-full
	// batch open waiting for coalescing partners (default 200µs).
	BatchWindow time.Duration

	// QueueDepth bounds each tile's admission queue; requests routed to a
	// full tile are shed (default 1024).
	QueueDepth int

	// Workers is the total number of concurrent batch executors, divided
	// evenly across tiles with a floor of one per tile (default
	// GOMAXPROCS).
	Workers int

	// MaxPayload bounds a request payload in bytes (default 64KiB).
	MaxPayload int

	// Deadline is the default per-request budget when Request.Timeout is
	// zero (default 1s).
	Deadline time.Duration

	// CycleMode selects exact (default) or sampled cycle accounting; see
	// the CycleMode constants.
	CycleMode CycleMode

	// CycleSampleN is the sampling period in CycleSampled mode: per
	// (schema, op) stream on each tile, every N'th batch runs the full
	// cycle model (default 8). Ignored in CycleExact mode.
	CycleSampleN int

	// SpanSampleN samples every N'th admitted request with a lifecycle
	// span (admit → route → queue → coalesce → dispatch → execute →
	// respond, annotated with tile id, batch size, and steal/retry/
	// fallback events), buffered for the admin /spans endpoint and the
	// Perfetto exporters. 0 (default) disables span sampling.
	SpanSampleN int

	// Elements selects and tunes the data-plane element chain every
	// request traverses before the tile router: per-client token-bucket
	// admission, a per-tile circuit breaker, and a canonical-bytes
	// response cache. The zero value disables the chain entirely — the
	// pre-chain code path, byte for byte.
	Elements elements.Config

	// Faults selects a deterministic fault-injection schedule for the
	// accelerator Systems (the chaos tests drive this).
	Faults faults.Config

	// Fresh builds a fresh System per batch instead of recycling through
	// the tile pools — the reference arm of the pooled-vs-fresh
	// equivalence tests.
	Fresh bool
}

func (o Options) withDefaults() Options {
	if o.Catalog == nil {
		o.Catalog = DefaultCatalog()
	}
	if o.Tiles <= 0 {
		o.Tiles = 1
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 16
	}
	if o.BatchWindow <= 0 {
		o.BatchWindow = 200 * time.Microsecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxPayload <= 0 {
		o.MaxPayload = 64 << 10
	}
	if o.Deadline <= 0 {
		o.Deadline = time.Second
	}
	if o.CycleSampleN <= 0 {
		o.CycleSampleN = 8
	}
	return o
}

// serveConfig sizes the accelerated System a batch executor runs on. The
// shape mirrors the chaos harness's sizing: wire inputs and materialized
// objects share Static, and heap, arena, and serializer output must each
// hold a worst-case batch (MaxBatch × MaxPayload).
func serveConfig(o Options) core.Config {
	cfg := core.DefaultConfig(core.KindAccel)
	cfg.Faults = o.Faults
	const floor = 16 << 20
	const quantum = 1 << 20
	need := uint64(o.MaxBatch) * uint64(o.MaxPayload)
	q := (need + quantum - 1) &^ (quantum - 1)
	cfg.StaticSize = q*5 + floor
	cfg.HeapSize = q*4 + floor
	cfg.ArenaSize = q*4 + floor
	cfg.OutSize = q + floor
	return cfg
}

// batchKey groups coalescible requests: one accelerator batch holds one
// operation over one schema.
type batchKey struct {
	schema string
	op     Op
}

// pending is an admitted request waiting for (or inside) a batch.
type pending struct {
	req       Request
	entry     *Entry
	msg       *dynamic.Message // payload parsed by the software codec at admission
	deadline  time.Time
	fromCache bool          // answered from the response cache; respond must not re-fill
	resp      chan Response // buffered(1); receives exactly one Response

	// Observability-only fields; nothing on the serving path branches on
	// them, so they cannot perturb responses or exact-mode counters.
	admitAt    time.Time // admission entry (e2e histogram origin)
	enqueuedAt time.Time // admission end / queue entry (queue-wait origin)
	joinedAt   time.Time // dispatcher pickup (coalesce-wait origin)
	span       *Span     // non-nil on sampled requests
}

// batchJob is one unit on a tile's admission queue: a single admitted
// request, or a preformed batch (the in-process client's DoBatch) that
// must run as one accelerator batch regardless of what else is in flight.
type batchJob struct {
	key       batchKey
	pendings  []*pending
	preformed bool
}

// Server is the sharded serving frontend: it validates and admits
// requests, routes each admitted job to one of its tiles, and owns the
// admission-side counters. Execution — batching, pooled Systems,
// degradation — belongs to the tiles.
type Server struct {
	opts  Options
	cfg   core.Config     // base System config (per-tile configs derive from it)
	obs   *serverObs      // live observability plane (stage histograms, gauges, spans)
	elems *elements.Chain // data-plane element chain; nil when every element is off

	tiles     []*tile
	routeSeq  atomic.Uint64 // routing sequence: RR cursor / p2c hash input
	inprocSeq atomic.Uint64 // in-process client identities for admission control

	admitMu sync.RWMutex
	closed  bool

	connMu    sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}

	mu    sync.Mutex
	stats stats
}

// stats is the admission-side counter group. All counters are
// integral-valued, so cross-worker accumulation order cannot perturb the
// totals — a serial run and a parallel run of the same batches snapshot
// identically.
type stats struct {
	reqDeser, reqSer                 uint64
	ok, shed, deadline, bad, errored uint64
	throttled                        uint64
	bytesIn, bytesOut                uint64
	protoErrs                        uint64 // malformed frames/bodies that terminated a connection
	chunkedIn, chunkedOut            uint64 // messages that crossed the wire as chunk trains
}

// NewServer builds and starts a Server: one router plus Options.Tiles
// tiles, each with its own dispatcher and executor pool.
func NewServer(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if err := opts.Faults.Validate(); err != nil {
		return nil, err
	}
	for _, id := range opts.FaultTiles {
		if id < 0 || id >= opts.Tiles {
			return nil, fmt.Errorf("serve: FaultTiles entry %d out of range [0,%d)", id, opts.Tiles)
		}
	}
	s := &Server{
		opts:      opts,
		cfg:       serveConfig(opts),
		obs:       newServerObs(opts),
		elems:     elements.New(opts.Elements, opts.Tiles),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	perTile := (opts.Workers + opts.Tiles - 1) / opts.Tiles
	if perTile < 1 {
		perTile = 1
	}
	for i := 0; i < opts.Tiles; i++ {
		s.tiles = append(s.tiles, newTile(s, i))
	}
	s.obs.registerGauges(s)
	for _, t := range s.tiles {
		t.start(perTile)
	}
	return s, nil
}

// Catalog returns the hosted catalog.
func (s *Server) Catalog() *Catalog { return s.opts.Catalog }

// Workers returns the total number of batch executors across tiles (for
// stats manifests).
func (s *Server) Workers() int {
	perTile := (s.opts.Workers + s.opts.Tiles - 1) / s.opts.Tiles
	if perTile < 1 {
		perTile = 1
	}
	return perTile * s.opts.Tiles
}

// Tiles returns the number of tiles.
func (s *Server) Tiles() int { return len(s.tiles) }

// Routing returns the active routing policy.
func (s *Server) Routing() Routing { return s.opts.Routing }

// Elements returns the server's data-plane element chain; nil when the
// chain is off.
func (s *Server) Elements() *elements.Chain { return s.elems }

// breaker returns the circuit-breaker element, nil when off.
func (s *Server) breaker() *elements.Breaker {
	if s.elems == nil {
		return nil
	}
	return s.elems.Breaker
}

// cache returns the response-cache element, nil when off.
func (s *Server) cache() *elements.Cache {
	if s.elems == nil {
		return nil
	}
	return s.elems.Cache
}

// SetTileFaults replaces tile id's fault-injection schedule at runtime —
// the control the chaos drills and the /faultz admin endpoint use to
// start or stop injection on a live tile and watch the breaker trip and
// recover. Warm resident Systems were built under the old schedule, so
// they are dropped (abandoned to the GC); pooled Systems need no flush
// because the pool keys on the full config — a checkout under the new
// schedule can never return an old-schedule System.
func (s *Server) SetTileFaults(id int, cfg faults.Config) error {
	if id < 0 || id >= len(s.tiles) {
		return fmt.Errorf("serve: tile %d out of range [0,%d)", id, len(s.tiles))
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	t := s.tiles[id]
	t.cfgMu.Lock()
	t.cfg.Faults = cfg
	t.cfgMu.Unlock()
	t.resMu.Lock()
	t.residents = make(map[string][]*core.System)
	t.residentN = 0
	t.resMu.Unlock()
	return nil
}

// TileFaults returns tile id's current fault schedule (zero Config for
// an out-of-range id).
func (s *Server) TileFaults(id int) faults.Config {
	if id < 0 || id >= len(s.tiles) {
		return faults.Config{}
	}
	t := s.tiles[id]
	t.cfgMu.RLock()
	defer t.cfgMu.RUnlock()
	return t.cfg.Faults
}

// TilePoolCounters returns each tile's pool recycling counters, indexed
// by tile id (for shutdown summaries and pool introspection).
func (s *Server) TilePoolCounters() []core.PoolCounters {
	out := make([]core.PoolCounters, len(s.tiles))
	for i, t := range s.tiles {
		out[i] = t.pool.Counters()
	}
	return out
}

// ConfigFingerprint hashes the System configuration batches run on,
// identifying the simulated-hardware parameter set behind a stats
// artifact (same role as the bench harness's fingerprint).
func (s *Server) ConfigFingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "%+v\n", s.cfg)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// pick routes one job to a tile. Round-robin walks the routing sequence;
// power-of-two-choices hashes it into two candidates and takes the one
// with the shallower queue (ties toward the lower id, so the choice is
// deterministic for a given arrival order and queue state).
//
// With the breaker element on, an open tile is treated like quarantine:
// round-robin scans deterministically forward to the next routable tile,
// p2c filters its candidates (falling back to a scan when both are
// open). If every breaker is open the preferred tile serves anyway —
// shedding everything on an all-open fleet would turn a partial outage
// into a total one. With every breaker closed — and always with the
// chain off — placement is bit-identical to the pre-breaker router,
// which is what keeps the rr determinism contract intact.
func (s *Server) pick() *tile {
	n := uint64(len(s.tiles))
	if n == 1 {
		return s.tiles[0]
	}
	seq := s.routeSeq.Add(1)
	br := s.breaker()
	if s.opts.Routing == RouteRoundRobin {
		t := s.tiles[(seq-1)%n]
		if br == nil || br.Routable(t.id, time.Now()) {
			return t
		}
		now := time.Now()
		for off := uint64(1); off < n; off++ {
			c := s.tiles[(seq-1+off)%n]
			if br.Routable(c.id, now) {
				br.NoteReroute(1)
				return c
			}
		}
		return t
	}
	r := splitmix64(seq)
	a, b := s.tiles[r%n], s.tiles[(r>>32)%n]
	if a.id > b.id {
		a, b = b, a
	}
	if br != nil {
		now := time.Now()
		ra, rb := br.Routable(a.id, now), br.Routable(b.id, now)
		switch {
		case ra && !rb:
			br.NoteReroute(1)
			return a
		case !ra && rb:
			br.NoteReroute(1)
			return b
		case !ra && !rb:
			for off := uint64(1); off <= n; off++ {
				c := s.tiles[(r+off)%n]
				if br.Routable(c.id, now) {
					br.NoteReroute(1)
					return c
				}
			}
			// Every breaker open: fall through to the plain p2c choice.
		}
	}
	if len(b.queue) < len(a.queue) {
		return b
	}
	return a
}

// enqueue routes one job; false means the chosen tile's queue was full.
// Callers must hold admitMu (read) with s.closed checked, so the tile
// queues cannot close mid-send.
func (s *Server) enqueue(job batchJob) bool {
	t := s.pick()
	if br := s.breaker(); br != nil {
		br.NoteRouted(t.id, len(job.pendings), time.Now())
	}
	for _, p := range job.pendings {
		if p.span != nil {
			p.span.Tile = t.id
			p.span.EnqueueAt = s.obs.since()
		}
	}
	select {
	case t.queue <- job:
		return true
	default:
		return false
	}
}

// submit admits one request on behalf of client. The returned channel
// receives exactly one Response; rejected requests (shed, throttled,
// bad) and cache hits are answered without queueing.
func (s *Server) submit(client string, req Request) <-chan Response {
	p, ok := s.admit(client, req)
	if !ok {
		return p.resp
	}
	job := batchJob{key: batchKey{schema: req.Schema, op: req.Op}, pendings: []*pending{p}}
	s.admitMu.RLock()
	if s.closed {
		s.admitMu.RUnlock()
		s.respond(p, Response{Status: StatusShed, Payload: []byte("server closing")})
		return p.resp
	}
	if !s.enqueue(job) {
		s.respond(p, Response{Status: StatusShed, Payload: []byte("admission queue full")})
	}
	s.admitMu.RUnlock()
	return p.resp
}

// submitPreformed admits a batch that must execute as one accelerator
// batch. All requests must share a schema and op and the batch must fit
// MaxBatch; every pending is answered through its own channel.
func (s *Server) submitPreformed(pendings []*pending, key batchKey) {
	job := batchJob{key: key, pendings: pendings, preformed: true}
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.closed {
		for _, p := range pendings {
			s.respond(p, Response{Status: StatusShed, Payload: []byte("server closing")})
		}
		return
	}
	if !s.enqueue(job) {
		for _, p := range pendings {
			s.respond(p, Response{Status: StatusShed, Payload: []byte("admission queue full")})
		}
	}
}

// admit validates a request from client and runs the element chain's
// admission-side stages. ok means the pending is ready to queue; on
// validation failure, throttle, or a cache hit the pending has already
// been answered.
func (s *Server) admit(client string, req Request) (p *pending, ok bool) {
	p = &pending{req: req, resp: make(chan Response, 1), admitAt: time.Now()}
	if sp := s.obs.maybeSpan(); sp != nil {
		sp.Schema, sp.Op = req.Schema, req.Op
		p.span = sp
	}
	s.mu.Lock()
	if req.Op == OpSerialize {
		s.stats.reqSer++
	} else {
		s.stats.reqDeser++
	}
	s.stats.bytesIn += uint64(len(req.Payload))
	s.mu.Unlock()

	if req.Op != OpDeserialize && req.Op != OpSerialize {
		s.respond(p, Response{Status: StatusBadRequest, Payload: []byte(fmt.Sprintf("unknown op %d", req.Op))})
		return p, false
	}
	entry := s.opts.Catalog.Lookup(req.Schema)
	if entry == nil {
		s.respond(p, Response{Status: StatusBadRequest, Payload: []byte("unknown schema " + req.Schema)})
		return p, false
	}
	if len(req.Payload) > s.opts.MaxPayload {
		s.respond(p, Response{Status: StatusBadRequest,
			Payload: []byte(fmt.Sprintf("payload %d bytes exceeds limit %d", len(req.Payload), s.opts.MaxPayload))})
		return p, false
	}
	// Element chain, admission side. Admission control runs before the
	// software parse so an over-rate client cannot buy CPU with rejected
	// requests; the cache runs next, because a hit skips both the parse
	// and the accelerator — a hit implies a previously-served identical
	// payload, so well-formedness is already established.
	if s.elems != nil {
		if a := s.elems.Admission; a != nil && !a.Allow(client, time.Now()) {
			s.respond(p, Response{Status: StatusThrottled, Payload: []byte("client over admission rate")})
			return p, false
		}
		if c := s.elems.Cache; c != nil {
			if out, cycles, hit := c.Get(req.Schema, uint8(req.Op), req.Payload); hit {
				p.fromCache = true
				s.respond(p, Response{Status: StatusOK, Cycles: cycles, Payload: out})
				return p, false
			}
		}
	}
	// Both operations take wire bytes; parsing them with the software codec
	// up front rejects malformed payloads before they reach the accelerator
	// and keeps the software answer at hand for graceful degradation.
	msg, err := codec.Unmarshal(entry.Type, req.Payload)
	if err != nil {
		s.respond(p, Response{Status: StatusBadRequest, Payload: []byte("malformed payload: " + err.Error())})
		return p, false
	}
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.opts.Deadline
	}
	p.entry = entry
	p.msg = msg
	now := time.Now()
	p.deadline = now.Add(timeout)
	p.enqueuedAt = now
	return p, true
}

// respond answers a pending exactly once and records the outcome. This
// is also where the response cache fills: only clean accelerator-path OK
// responses are stored (no fallbacks — their bytes are identical anyway,
// but a fallback marks a degraded tile, and caching under degradation
// would mask it), and never re-stored from a cache hit.
func (s *Server) respond(p *pending, resp Response) {
	resp.ID = p.req.ID
	if resp.Status == StatusOK && !resp.FellBack && !p.fromCache {
		if c := s.cache(); c != nil {
			c.Put(p.req.Schema, uint8(p.req.Op), p.req.Payload, resp.Payload, resp.Cycles)
		}
	}
	s.mu.Lock()
	switch resp.Status {
	case StatusOK:
		s.stats.ok++
		s.stats.bytesOut += uint64(len(resp.Payload))
	case StatusShed:
		s.stats.shed++
	case StatusDeadline:
		s.stats.deadline++
	case StatusBadRequest:
		s.stats.bad++
	case StatusThrottled:
		s.stats.throttled++
	default:
		s.stats.errored++
	}
	s.mu.Unlock()
	s.obs.e2e.Record(time.Since(p.admitAt))
	if sp := p.span; sp != nil {
		sp.DoneAt = s.obs.since()
		sp.Status = resp.Status
		if resp.FellBack {
			sp.FellBack = true
		}
		s.obs.finish(sp)
	}
	p.resp <- resp
}

// CollectTelemetry implements telemetry.Collector for the serving group:
// admission-side counters plus every tile's execution counters summed.
// The per-tile breakdown lands under serve/tile<i>/ (see
// TelemetrySnapshot); this group stays the cross-tile aggregate, so its
// shape and values match the pre-sharding single-pool server whenever the
// same batches run.
func (s *Server) CollectTelemetry(emit func(name string, value float64)) {
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	var ts tileStats
	var cyc telemetry.Attribution
	var sampledReqs uint64
	depth := 0
	for _, t := range s.tiles {
		t.mu.Lock()
		ts.add(t.stats)
		t.mu.Unlock()
		a, n := t.cycleTelemetry()
		cyc.Total += a.Total
		cyc.FSM += a.FSM
		cyc.Supply += a.Supply
		cyc.Spill += a.Spill
		cyc.ADTMiss += a.ADTMiss
		sampledReqs += n
		depth += len(t.queue)
	}
	emit("requests/deser", float64(st.reqDeser))
	emit("requests/ser", float64(st.reqSer))
	emit("responses/ok", float64(st.ok))
	emit("responses/shed", float64(st.shed))
	emit("responses/deadline", float64(st.deadline))
	emit("responses/bad_request", float64(st.bad))
	emit("responses/error", float64(st.errored))
	emit("responses/throttled", float64(st.throttled))
	emit("bytes/in", float64(st.bytesIn))
	emit("bytes/out", float64(st.bytesOut))
	emit("protocol/errors", float64(st.protoErrs))
	emit("protocol/chunked_in", float64(st.chunkedIn))
	emit("protocol/chunked_out", float64(st.chunkedOut))
	emit("batches", float64(ts.batches))
	emit("batch_requests", float64(ts.batchRequests))
	emit("fallbacks/accel", float64(ts.accelFallbacks))
	emit("fallbacks/server", float64(ts.serverFallbacks))
	emit("retries", float64(ts.retryEvents))
	emit("steals", float64(ts.steals))
	emit("stolen_requests", float64(ts.stolenRequests))
	emit("tiles", float64(len(s.tiles)))
	emit("queue/capacity", float64(s.opts.QueueDepth*len(s.tiles)))
	emit("queue/depth", float64(depth))
	emit("cycles/accel", cyc.Total)
	emit("cycles/fsm", cyc.FSM)
	emit("cycles/supply", cyc.Supply)
	emit("cycles/spill", cyc.Spill)
	emit("cycles/adt_stall", cyc.ADTMiss)
	// Provenance: how the cycles/* values above were obtained. In sampled
	// mode they are extrapolated from cycle_sampled_requests measured
	// requests at 1-in-cycle_sample_rate batch cadence; in exact mode
	// every request was measured (rate 1, extrapolated 0).
	rate, extrapolated := 1, 0
	if s.opts.CycleMode == CycleSampled {
		rate, extrapolated = s.opts.CycleSampleN, 1
	}
	emit("cycle_sample_rate", float64(rate))
	emit("cycle_sampled_requests", float64(sampledReqs))
	emit("cycle_extrapolated", float64(extrapolated))
	// Span-sampling provenance: how many requests carried a lifecycle
	// span, how many spans completed, and how many the bounded ring
	// overwrote. All zero with SpanSampleN=0, so the pre-existing
	// equivalence contracts are unchanged at their default configuration;
	// with sampling on, the counts are a pure function of the admitted
	// request sequence.
	sampled, completed, dropped := s.obs.spanCounters()
	emit("spans/sampled", float64(sampled))
	emit("spans/completed", float64(completed))
	emit("spans/dropped", float64(dropped))
}

// TelemetrySnapshot merges the serving group, one serve/tile<i> group per
// tile, and the per-batch System counters aggregated across every tile,
// sorted by name. At quiescence (no requests in flight) the result is
// deterministic for a given request set — the basis of the
// serial-vs-parallel equivalence tests — and, under round-robin routing,
// the serve/ aggregate is bitwise-identical between a 1-tile and an
// N-tile server.
func (s *Server) TelemetrySnapshot() telemetry.Snapshot {
	var reg telemetry.Registry
	reg.Register("serve", s)
	for _, t := range s.tiles {
		reg.Register(fmt.Sprintf("serve/tile%d", t.id), t)
	}
	// Element groups register only when their element is on, so a
	// chain-off snapshot is byte-identical to the pre-chain server's.
	if s.elems != nil {
		if a := s.elems.Admission; a != nil {
			reg.Register("serve/elements/admission", a)
		}
		if b := s.elems.Breaker; b != nil {
			reg.Register("serve/elements/breaker", b)
		}
		if c := s.elems.Cache; c != nil {
			reg.Register("serve/elements/cache", c)
		}
	}
	var agg telemetry.Aggregate
	agg.Add(reg.Snapshot())
	// Tiles absorb System snapshots in batch-completion order, which is
	// scheduling-dependent — but every counter is integral-valued, so the
	// cross-tile sum is exact and order cannot perturb it.
	for _, t := range s.tiles {
		t.mu.Lock()
		agg.Add(t.sysAgg.Snapshot())
		t.mu.Unlock()
	}
	return agg.Snapshot()
}

// AggregatedCounters returns the quiescent snapshot with the per-tile
// serve/tile<i>/ groups stripped — the tile-count-independent view the
// 1-tile-vs-N-tile equivalence tests compare. Config echoes
// (serve/tiles, serve/queue/capacity, serve/cycle_sample_rate,
// serve/cycle_extrapolated) are also dropped: they describe the server's
// shape and mode, not its measurements.
func (s *Server) AggregatedCounters() map[string]float64 {
	snap := s.TelemetrySnapshot()
	out := make(map[string]float64, snap.Len())
	for _, sm := range snap.Samples() {
		switch {
		case isTileCounter(sm.Name):
			continue
		case sm.Name == "serve/tiles", sm.Name == "serve/queue/capacity",
			sm.Name == "serve/cycle_sample_rate", sm.Name == "serve/cycle_extrapolated":
			continue
		}
		out[sm.Name] = sm.Value
	}
	return out
}

// isTileCounter reports whether name belongs to a serve/tile<i>/ group.
func isTileCounter(name string) bool {
	const prefix = "serve/tile"
	if len(name) <= len(prefix) || name[:len(prefix)] != prefix {
		return false
	}
	rest := name[len(prefix):]
	i := 0
	for i < len(rest) && rest[i] >= '0' && rest[i] <= '9' {
		i++
	}
	return i > 0 && i < len(rest) && rest[i] == '/'
}

// Serve accepts connections on ln until the listener closes (Close closes
// every registered listener). Each connection may pipeline requests;
// responses return in completion order, matched by id.
func (s *Server) Serve(ln net.Listener) error {
	s.connMu.Lock()
	s.listeners[ln] = struct{}{}
	s.connMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.connMu.Lock()
			delete(s.listeners, ln)
			s.connMu.Unlock()
			s.admitMu.RLock()
			closed := s.closed
			s.admitMu.RUnlock()
			if closed {
				return nil
			}
			return err
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		go s.serveConn(conn)
	}
}

// readLimit bounds an inbound message body. It is deliberately looser
// than MaxPayload: a moderately-oversized payload should still be read,
// parsed, and answered with a polite StatusBadRequest rather than a
// slammed connection; only a frame no legitimate client would send (far
// past any payload the catalog admits) is treated as a protocol error.
func (s *Server) readLimit() int {
	return s.opts.MaxPayload*2 + 4096
}

// noteProtocolError counts a connection terminated for a malformed frame
// or body. A clean peer disconnect (EOF between messages, or our own
// Close tearing the socket down) is not a protocol error.
func (s *Server) noteProtocolError(err error) {
	if err == nil || err == io.EOF || errors.Is(err, net.ErrClosed) {
		return
	}
	s.mu.Lock()
	s.stats.protoErrs++
	s.mu.Unlock()
}

// serveConn demultiplexes one connection: requests stream in, each is
// submitted, and a per-connection writer lock serializes the response
// messages (a chunk train must not interleave). A framing or parse error
// terminates the connection (the peer is not speaking the protocol) and
// is counted under serve/protocol/errors.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	// The connection's remote address is the admission-control client
	// identity: one token bucket per client connection.
	client := conn.RemoteAddr().String()
	var writeMu sync.Mutex
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		body, chunked, err := readMessage(conn, s.readLimit())
		if err != nil {
			s.noteProtocolError(err)
			return
		}
		if chunked {
			s.mu.Lock()
			s.stats.chunkedIn++
			s.mu.Unlock()
		}
		req, err := parseRequest(body)
		if err != nil {
			s.noteProtocolError(err)
			return
		}
		ch := s.submit(client, req)
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := <-ch
			writeMu.Lock()
			chunked, err := writeMessage(conn, appendResponse(nil, &resp))
			writeMu.Unlock()
			if err != nil {
				// A partial response frame desynchronizes the stream;
				// drop the connection rather than risk corrupting the
				// next message.
				conn.Close()
				return
			}
			if chunked {
				s.mu.Lock()
				s.stats.chunkedOut++
				s.mu.Unlock()
			}
		}()
	}
}

// Close drains and stops the server: admission closes (new requests are
// shed), every tile's queued work completes — steal-capable tiles help
// drain their neighbours' backlogs — dispatchers and executors exit, and
// open listeners and connections are closed.
func (s *Server) Close() {
	s.admitMu.Lock()
	if s.closed {
		s.admitMu.Unlock()
		return
	}
	s.closed = true
	s.admitMu.Unlock()
	for _, t := range s.tiles {
		close(t.queue)
	}
	s.connMu.Lock()
	for ln := range s.listeners {
		ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
	for _, t := range s.tiles {
		t.wg.Wait()
	}
}
