package serve

import (
	"sort"
	"sync"
	"time"

	"protoacc/internal/core"
	"protoacc/internal/faults"
	"protoacc/internal/pb/codec"
	"protoacc/internal/telemetry"
)

// A tile is one independent accelerator shard: its own System pool, its
// own bounded admission queue, its own coalescing dispatcher, and its own
// batch executors. The Server routes every admitted job to exactly one
// tile; tiles share nothing but the Server's admission bookkeeping, so a
// System poisoned by injected faults can only ever disturb the pool — and
// therefore the serving capacity — of the tile it belongs to. This is the
// RPCAcc shape (PAPERS.md): many engines behind one frontend, with the
// frontend-to-engine messaging kept to a single bounded channel per
// engine.
type tile struct {
	id  int
	srv *Server

	// cfg is the per-tile System config (FaultTiles may strip the fault
	// schedule at construction; Server.SetTileFaults may swap it live).
	// cfgMu guards it: executors read a copy at checkout, the admin
	// fault control writes it. The pool needs no flush on a swap — it
	// keys on the full config, so a checkout under the new schedule can
	// never return an old-schedule System.
	cfgMu sync.RWMutex
	cfg   core.Config

	pool *core.Pool
	obs  *tileObs // this tile's shard of the observability plane

	queue chan batchJob // admission → dispatcher (bounded, routed by Server)
	work  chan batchJob // dispatcher → executors (MaxBatch-sized chunks)

	// canSteal allows this tile's idle executors to drain the deepest
	// other queue. Off in deterministic routing mode (stealing would make
	// batch→tile placement scheduling-dependent) and on fault-injected
	// tiles (a faulty tile must not pull work routed to healthy ones).
	canSteal bool

	wg sync.WaitGroup // dispatcher + executors

	mu      sync.Mutex
	stats   tileStats
	sysAgg  telemetry.Aggregate // accelerator unit counters across batches
	sysSnap telemetry.Snapshot  // absorb scratch, guarded by mu

	// residents are warm Systems kept per schema between batches: the
	// schema registry and built ADTs survive, so a coalesced batch pays
	// only a ResetBatch (proportional scrub + stat reset) instead of a
	// pool checkout plus LoadSchema. Capped at the tile's executor count —
	// beyond that the extra Systems overflow into the pool.
	resMu       sync.Mutex
	residents   map[string][]*core.System
	residentN   int
	residentCap int

	// samples tracks per-(schema, op) sampling state in CycleSampled mode:
	// the batch cadence, the sampled-vs-total request populations the
	// telemetry extrapolation scales by, and the latest per-request cycle
	// estimate carried by functional responses.
	sampleMu sync.Mutex
	samples  map[batchKey]*sampleState
}

// sampleState is one (schema, op) stream's cycle-sampling ledger.
type sampleState struct {
	seen           uint64 // batches dispatched (drives the 1-in-N cadence)
	sampledBatches uint64
	sampledReqs    uint64                // requests that ran the full cycle model
	totalReqs      uint64                // all requests (sampled + functional)
	attr           telemetry.Attribution // accumulated over sampled batches only
	perReq         float64               // latest sampled per-request cycle estimate
}

// tileStats is the execution-side counter set, owned per tile. Like the
// Server's admission stats, every field is integral-valued, so the order
// tiles and workers accumulate in cannot perturb cross-tile sums.
type tileStats struct {
	batches, batchRequests          uint64
	accelFallbacks, serverFallbacks uint64
	retryEvents                     uint64
	steals, stolenRequests          uint64
	cycles                          telemetry.Attribution
}

// add folds o into s (for the Server's cross-tile aggregate).
func (s *tileStats) add(o tileStats) {
	s.batches += o.batches
	s.batchRequests += o.batchRequests
	s.accelFallbacks += o.accelFallbacks
	s.serverFallbacks += o.serverFallbacks
	s.retryEvents += o.retryEvents
	s.steals += o.steals
	s.stolenRequests += o.stolenRequests
	s.cycles.Total += o.cycles.Total
	s.cycles.FSM += o.cycles.FSM
	s.cycles.Supply += o.cycles.Supply
	s.cycles.Spill += o.cycles.Spill
	s.cycles.ADTMiss += o.cycles.ADTMiss
}

// newTile builds one tile; start launches its goroutines. Construction
// and start are separate so the Server can publish the full tile slice
// before any worker begins iterating it for steal victims.
func newTile(s *Server, id int) *tile {
	cfg := s.cfg
	if s.opts.FaultTiles != nil && !containsInt(s.opts.FaultTiles, id) {
		cfg.Faults = faults.Config{}
	}
	t := &tile{
		id:        id,
		srv:       s,
		cfg:       cfg,
		obs:       s.obs.tiles[id],
		pool:      core.NewPool(0),
		queue:     make(chan batchJob, s.opts.QueueDepth),
		work:      make(chan batchJob),
		residents: make(map[string][]*core.System),
		samples:   make(map[batchKey]*sampleState),
	}
	t.canSteal = s.opts.Routing == RoutePowerOfTwo && s.opts.Tiles > 1 && !cfg.Faults.Enabled
	return t
}

// start launches the tile's dispatcher and executors.
func (t *tile) start(workers int) {
	t.residentCap = workers
	t.wg.Add(1)
	go t.dispatch()
	for i := 0; i < workers; i++ {
		t.wg.Add(1)
		go t.workerLoop()
	}
}

func containsInt(list []int, x int) bool {
	for _, v := range list {
		if v == x {
			return true
		}
	}
	return false
}

// config returns a copy of the tile's current System config.
func (t *tile) config() core.Config {
	t.cfgMu.RLock()
	defer t.cfgMu.RUnlock()
	return t.cfg
}

// faultsEnabled reports whether a fault schedule is currently active on
// this tile.
func (t *tile) faultsEnabled() bool {
	t.cfgMu.RLock()
	defer t.cfgMu.RUnlock()
	return t.cfg.Faults.Enabled
}

// observeBreaker feeds one batch outcome (reqs completed, fails of which
// were failure events) into the circuit-breaker element, if on.
func (t *tile) observeBreaker(reqs, fails uint64) {
	if br := t.srv.breaker(); br != nil {
		br.Observe(t.id, reqs, fails, time.Now())
	}
}

// dispatch coalesces this tile's queued singles into per-(schema, op)
// batches, flushing a batch when it reaches MaxBatch or its window
// expires; preformed batches pass through untouched. Runs until the queue
// closes, then flushes every open batch and closes the work channel.
//
// The window is load-bearing for batching efficiency: an "idle executor"
// signal is NOT a flush trigger, because on a loaded host executors look
// idle whenever the clients feeding the tile simply haven't been
// scheduled yet, and flushing on that signal shreds every burst into
// single-request batches (measured 4-5x throughput loss closed-loop).
func (t *tile) dispatch() {
	defer t.wg.Done()
	type openBatch struct {
		pendings []*pending
		flushAt  time.Time
	}
	groups := make(map[batchKey]*openBatch)
	var timer *time.Timer
	var timerC <-chan time.Time

	rearm := func() {
		var earliest time.Time
		for _, g := range groups {
			if earliest.IsZero() || g.flushAt.Before(earliest) {
				earliest = g.flushAt
			}
		}
		if earliest.IsZero() {
			timerC = nil
			return
		}
		d := time.Until(earliest)
		if d < 0 {
			d = 0
		}
		if timer == nil {
			timer = time.NewTimer(d)
		} else {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(d)
		}
		timerC = timer.C
	}
	// flush hands the group to the executors in MaxBatch-sized chunks: a
	// queued job may carry several pendings, so the accumulated group can
	// exceed MaxBatch even though singles flush exactly at the cap —
	// submitting it whole would overrun the batch size the Systems were
	// sized for.
	flush := func(k batchKey) {
		g := groups[k]
		delete(groups, k)
		pendings := g.pendings
		for len(pendings) > 0 {
			n := len(pendings)
			if n > t.srv.opts.MaxBatch {
				n = t.srv.opts.MaxBatch
			}
			t.work <- batchJob{key: k, pendings: pendings[:n:n]}
			pendings = pendings[n:]
		}
	}
	handle := func(job batchJob) {
		now := time.Now()
		for _, p := range job.pendings {
			if !p.enqueuedAt.IsZero() {
				t.obs.record(stageQueueWait, now.Sub(p.enqueuedAt))
			}
			p.joinedAt = now
			if p.span != nil {
				p.span.DequeueAt = t.srv.obs.since()
			}
		}
		if job.preformed {
			t.work <- job
			return
		}
		g := groups[job.key]
		if g == nil {
			g = &openBatch{flushAt: time.Now().Add(t.srv.opts.BatchWindow)}
			groups[job.key] = g
		}
		g.pendings = append(g.pendings, job.pendings...)
		if len(g.pendings) >= t.srv.opts.MaxBatch {
			flush(job.key)
		}
	}
	drain := func() {
		for k := range groups {
			flush(k)
		}
		close(t.work)
	}

	for {
		rearm()
		select {
		case job, ok := <-t.queue:
			if !ok {
				drain()
				return
			}
			handle(job)
		case <-timerC:
			now := time.Now()
			for k, g := range groups {
				if !g.flushAt.After(now) {
					flush(k)
				}
			}
		}
	}
}

// workerLoop executes batches for this tile. Steal-capable tiles poll:
// when the local work channel is empty they drain one job from the
// deepest other queue before parking briefly; tiles that cannot steal
// block on their channel exactly like the single-pool server did.
func (t *tile) workerLoop() {
	defer t.wg.Done()
	if !t.canSteal {
		for job := range t.work {
			t.runBatch(job)
		}
		return
	}
	var park *time.Timer
	defer func() {
		if park != nil {
			park.Stop()
		}
	}()
	for {
		select {
		case job, ok := <-t.work:
			if !ok {
				return
			}
			t.runBatch(job)
			continue
		default:
		}
		if t.trySteal() {
			continue
		}
		if park == nil {
			park = time.NewTimer(t.srv.opts.BatchWindow)
		} else {
			park.Reset(t.srv.opts.BatchWindow)
		}
		select {
		case job, ok := <-t.work:
			if !park.Stop() {
				select {
				case <-park.C:
				default:
				}
			}
			if !ok {
				return
			}
			t.runBatch(job)
		case <-park.C:
		}
	}
}

// trySteal drains up to a batch's worth of jobs from the deepest
// admission queue of the other tiles and runs them here, re-coalesced by
// (schema, op). Two rules keep stealing from destroying the batching it
// is meant to help: it only fires when the victim's backlog exceeds a
// full batch (below that, the victim's dispatcher is about to coalesce
// those jobs into far cheaper MaxBatch-sized executions), and it grabs a
// whole batch of singles rather than one — a stolen single would execute
// as a batch of one, paying a full System checkout for one request.
func (t *tile) trySteal() bool {
	// canSteal is fixed at construction; two dynamic conditions also veto:
	// a fault schedule enabled after construction (SetTileFaults), and an
	// open/exhausted breaker — a tile the router is avoiding must not
	// pull in work routed to healthy tiles through the back door.
	if t.faultsEnabled() {
		return false
	}
	if br := t.srv.breaker(); br != nil && !br.Routable(t.id, time.Now()) {
		return false
	}
	var victim *tile
	best := t.srv.opts.MaxBatch // steal only past a batch's worth of backlog
	for _, v := range t.srv.tiles {
		if v == t {
			continue
		}
		if n := len(v.queue); n > best {
			best, victim = n, v
		}
	}
	if victim == nil {
		return false
	}
	var preformed []batchJob
	grabbed := make(map[batchKey][]*pending)
	total := 0
	for total < t.srv.opts.MaxBatch {
		select {
		case job, ok := <-victim.queue:
			if !ok {
				total = t.srv.opts.MaxBatch // closed: run what we hold
				break
			}
			if job.preformed {
				preformed = append(preformed, job)
			} else {
				grabbed[job.key] = append(grabbed[job.key], job.pendings...)
			}
			total += len(job.pendings)
		default:
			total = t.srv.opts.MaxBatch // drained: run what we hold
		}
	}
	if len(preformed) == 0 && len(grabbed) == 0 {
		return false
	}
	stolen := 0
	for _, job := range preformed {
		stolen += len(job.pendings)
	}
	for _, pendings := range grabbed {
		stolen += len(pendings)
	}
	t.mu.Lock()
	t.stats.steals++
	t.stats.stolenRequests += uint64(stolen)
	t.mu.Unlock()
	now := time.Now()
	markStolen := func(pendings []*pending) {
		for _, p := range pendings {
			if !p.enqueuedAt.IsZero() {
				t.obs.record(stageQueueWait, now.Sub(p.enqueuedAt))
			}
			p.joinedAt = now
			if p.span != nil {
				p.span.Stolen = true
				p.span.DequeueAt = t.srv.obs.since()
			}
		}
	}
	for _, job := range preformed {
		markStolen(job.pendings)
	}
	for _, pendings := range grabbed {
		markStolen(pendings)
	}
	for _, job := range preformed {
		t.runBatch(job)
	}
	for k, pendings := range grabbed {
		for len(pendings) > 0 {
			n := len(pendings)
			if n > t.srv.opts.MaxBatch {
				n = t.srv.opts.MaxBatch
			}
			t.runBatch(batchJob{key: k, pendings: pendings[:n:n]})
			pendings = pendings[n:]
		}
	}
	return true
}

// runBatch executes one batch on this tile's accelerator shard: expire
// overdue requests, then either run the §4.4.1 batch operation on a
// checked-out System (exact mode, and the sampled batches of sampled
// mode) or answer functionally with no System at all (the non-sampled
// batches of sampled mode). The accelerator path degrades to the
// software codec when it errors out.
func (t *tile) runBatch(job batchJob) {
	live := job.pendings[:0:0]
	now := time.Now()
	expired := 0
	for _, p := range job.pendings {
		if p.deadline.Before(now) {
			t.srv.respond(p, Response{Status: StatusDeadline, Payload: []byte("deadline expired in queue")})
			expired++
			continue
		}
		live = append(live, p)
	}
	if expired > 0 {
		// Deadline misses count as failure events on this tile: a tile whose
		// queue lets budgets expire is unhealthy from the client's view.
		t.observeBreaker(uint64(expired), uint64(expired))
	}
	if len(live) == 0 {
		return
	}
	t.obs.inflight.Add(1)
	defer t.obs.inflight.Add(-1)
	t.obs.batchSize.RecordValue(uint64(len(live)))
	batchAt := t.srv.obs.since()
	for _, p := range live {
		if !p.joinedAt.IsZero() {
			t.obs.record(stageCoalesceWait, now.Sub(p.joinedAt))
		}
		if p.span != nil {
			p.span.Tile = t.id // executing tile; differs from routed on steals
			p.span.BatchSize = len(live)
			p.span.BatchAt = batchAt
		}
	}
	t.mu.Lock()
	t.stats.batches++
	t.stats.batchRequests += uint64(len(live))
	t.mu.Unlock()

	// In sampled mode, only every CycleSampleN'th batch of each
	// (schema, op) stream runs the cycle model; the rest answer on the
	// functional path, carrying the stream's latest per-request estimate.
	// The first batch of every stream is always sampled, so estimates
	// exist from the start.
	var st *sampleState
	if t.srv.opts.CycleMode == CycleSampled {
		st = t.sampleState(job.key)
		t.sampleMu.Lock()
		seq := st.seen
		st.seen++
		st.totalReqs += uint64(len(live))
		est := st.perReq
		t.sampleMu.Unlock()
		if seq%uint64(t.srv.opts.CycleSampleN) != 0 {
			t.runFunctional(live, est)
			return
		}
	}

	buildStart := time.Now()
	sys, err := t.checkout(job.key.schema, live[0].entry)
	if err != nil {
		t.degrade(live, err)
		return
	}
	sys.Telemetry().EnableAttribution(true)
	switch job.key.op {
	case OpSerialize:
		t.runSerialize(sys, live, st, buildStart)
	default:
		t.runDeserialize(sys, live, st, buildStart)
	}
	t.absorb(sys)
	t.checkin(job.key.schema, sys)
}

// execMarks records the build→execute stage boundary on every sampled
// span of the batch (build covers System checkout plus input
// materialization; execute is the accelerator batch operation).
func (t *tile) execMarks(live []*pending, at time.Duration, end bool) {
	for _, p := range live {
		if p.span == nil {
			continue
		}
		if end {
			p.span.ExecEndAt = at
		} else {
			p.span.ExecStartAt = at
		}
	}
}

// sampleState returns (creating on demand) the sampling ledger for one
// (schema, op) stream.
func (t *tile) sampleState(k batchKey) *sampleState {
	t.sampleMu.Lock()
	defer t.sampleMu.Unlock()
	st := t.samples[k]
	if st == nil {
		st = &sampleState{}
		t.samples[k] = st
	}
	return st
}

// checkout acquires a System with the batch's schema loaded: a fresh one
// when Options.Fresh demands it, a ResetBatch-recycled resident when one
// is warm for this schema, or a pool checkout plus LoadSchema otherwise.
func (t *tile) checkout(schema string, entry *Entry) (*core.System, error) {
	if !t.srv.opts.Fresh {
		t.resMu.Lock()
		if list := t.residents[schema]; len(list) > 0 {
			sys := list[len(list)-1]
			list[len(list)-1] = nil
			t.residents[schema] = list[:len(list)-1]
			t.residentN--
			t.resMu.Unlock()
			sys.ResetBatch()
			return sys, nil
		}
		t.resMu.Unlock()
	}
	cfg := t.config()
	var sys *core.System
	if t.srv.opts.Fresh {
		sys = core.New(cfg)
	} else {
		sys = t.pool.Get(cfg)
	}
	if err := sys.LoadSchema(entry.Type); err != nil {
		return nil, err
	}
	return sys, nil
}

// checkin retires a batch System: fresh Systems are dropped, poisoned
// ones are routed through the pool (which drops and counts them), and
// healthy ones become residents for their schema — or overflow into the
// pool when the resident cap is reached. Residents are reset on the next
// checkout, mirroring the pool's reset-on-Get discipline.
func (t *tile) checkin(schema string, sys *core.System) {
	if t.srv.opts.Fresh {
		return
	}
	if sys.Poisoned() {
		t.pool.Put(sys)
		return
	}
	t.resMu.Lock()
	if t.residentN < t.residentCap {
		t.residents[schema] = append(t.residents[schema], sys)
		t.residentN++
		t.resMu.Unlock()
		return
	}
	t.resMu.Unlock()
	t.pool.Put(sys)
}

// runFunctional answers a non-sampled batch in fast functional mode: the
// response payload is the canonical serialization of the admission-parsed
// message, which is byte-identical to what the exact path returns for
// both operations (the same contract the degrade path and the loadgen
// -check verifier rely on). No System is checked out and no cycle model
// runs; Cycles carries the stream's latest sampled per-request estimate.
func (t *tile) runFunctional(live []*pending, estCycles float64) {
	t0 := time.Now()
	for _, p := range live {
		out, err := codec.Marshal(p.msg)
		if err != nil {
			t.srv.respond(p, Response{Status: StatusError, Payload: []byte("functional codec: " + err.Error())})
			continue
		}
		t.srv.respond(p, Response{Status: StatusOK, Cycles: estCycles, Payload: out})
	}
	t.observeBreaker(uint64(len(live)), 0)
	t.obs.record(stageRespondWrite, time.Since(t0))
}

// runDeserialize answers each request with the canonical re-serialization
// of the object the accelerator materialized from its payload.
func (t *tile) runDeserialize(sys *core.System, live []*pending, st *sampleState, buildStart time.Time) {
	mt := live[0].entry.Type
	refs := make([]core.WireRef, len(live))
	for i, p := range live {
		addr, err := sys.WriteWire(p.req.Payload)
		if err != nil {
			t.degrade(live, err)
			return
		}
		refs[i] = core.WireRef{Addr: addr, Len: uint64(len(p.req.Payload))}
	}
	execStart := time.Now()
	t.obs.record(stageBatchBuild, execStart.Sub(buildStart))
	t.execMarks(live, t.srv.obs.since(), false)
	res, objs, err := sys.DeserializeBatch(mt, refs)
	if err != nil {
		t.degrade(live, err)
		return
	}
	execEnd := time.Now()
	t.obs.record(stageExecute, execEnd.Sub(execStart))
	t.execMarks(live, t.srv.obs.since(), true)
	t.noteBatch(res, len(live), st)
	t.annotateSpans(live, res)
	perReq := res.Cycles / float64(len(live))
	fellBack := res.Fault != nil && res.Fault.FellBack
	for i, p := range live {
		m, err := sys.ReadMessage(mt, objs[i])
		if err != nil {
			t.srv.respond(p, Response{Status: StatusError, Payload: []byte("object readback: " + err.Error())})
			continue
		}
		out, err := codec.Marshal(m)
		if err != nil {
			t.srv.respond(p, Response{Status: StatusError, Payload: []byte("canonical marshal: " + err.Error())})
			continue
		}
		t.srv.respond(p, Response{Status: StatusOK, FellBack: fellBack, Cycles: perReq, Payload: out})
	}
	t.obs.record(stageRespondWrite, time.Since(execEnd))
}

// runSerialize answers each request with the wire bytes the accelerator's
// serializer produced for its (pre-parsed) object.
func (t *tile) runSerialize(sys *core.System, live []*pending, st *sampleState, buildStart time.Time) {
	mt := live[0].entry.Type
	objs := make([]uint64, len(live))
	for i, p := range live {
		addr, err := sys.MaterializeInput(p.msg)
		if err != nil {
			t.degrade(live, err)
			return
		}
		objs[i] = addr
	}
	execStart := time.Now()
	t.obs.record(stageBatchBuild, execStart.Sub(buildStart))
	t.execMarks(live, t.srv.obs.since(), false)
	res, refs, err := sys.SerializeBatch(mt, objs)
	if err != nil {
		t.degrade(live, err)
		return
	}
	execEnd := time.Now()
	t.obs.record(stageExecute, execEnd.Sub(execStart))
	t.execMarks(live, t.srv.obs.since(), true)
	t.noteBatch(res, len(live), st)
	t.annotateSpans(live, res)
	perReq := res.Cycles / float64(len(live))
	fellBack := res.Fault != nil && res.Fault.FellBack
	for i, p := range live {
		out, err := sys.ReadWire(refs[i].Addr, refs[i].Len)
		if err != nil {
			t.srv.respond(p, Response{Status: StatusError, Payload: []byte("wire readback: " + err.Error())})
			continue
		}
		t.srv.respond(p, Response{Status: StatusOK, FellBack: fellBack, Cycles: perReq, Payload: out})
	}
	t.obs.record(stageRespondWrite, time.Since(execEnd))
}

// annotateSpans copies a batch result's resilience events onto every
// sampled span in the batch.
func (t *tile) annotateSpans(live []*pending, res core.Result) {
	if res.Fault == nil {
		return
	}
	for _, p := range live {
		if p.span != nil {
			p.span.Retries = uint64(res.Fault.Retries)
		}
	}
}

// degrade completes every live request of a failed batch on the host's
// software codec. Responses stay byte-identical to the accelerator path —
// for both operations the answer is the canonical serialization of the
// request's pre-parsed message — so callers cannot observe which path ran
// except through the FellBack flag. Degradation is a per-tile event: only
// this tile's fallback counter moves, and only this tile's pool can hold
// the poisoned System that caused it.
func (t *tile) degrade(live []*pending, cause error) {
	_ = cause // the per-response FellBack flag and counters carry the signal
	t.mu.Lock()
	t.stats.serverFallbacks += uint64(len(live))
	t.mu.Unlock()
	// Every degraded request is a failure event: the accelerator shard
	// could not serve it, which is exactly what the breaker watches for.
	t.observeBreaker(uint64(len(live)), uint64(len(live)))
	t0 := time.Now()
	for _, p := range live {
		if p.span != nil {
			p.span.FellBack = true
		}
		out, err := codec.Marshal(p.msg)
		if err != nil {
			t.srv.respond(p, Response{Status: StatusError, Payload: []byte("software codec: " + err.Error())})
			continue
		}
		t.srv.respond(p, Response{Status: StatusOK, FellBack: true, Payload: out})
	}
	t.obs.record(stageRespondWrite, time.Since(t0))
}

// noteBatch records a completed accelerator batch's resilience and cycle
// attribution counters. In exact mode (st == nil) the attribution folds
// into the tile totals; in sampled mode it folds into the stream's
// sampling ledger, which telemetry later extrapolates.
func (t *tile) noteBatch(res core.Result, n int, st *sampleState) {
	t.mu.Lock()
	if res.Fault != nil {
		t.stats.retryEvents += uint64(res.Fault.Retries)
		if res.Fault.FellBack {
			t.stats.accelFallbacks += uint64(n)
		}
	}
	if st == nil && res.Telemetry != nil {
		a := res.Telemetry.Attribution
		t.stats.cycles.Total += a.Total
		t.stats.cycles.FSM += a.FSM
		t.stats.cycles.Supply += a.Supply
		t.stats.cycles.Spill += a.Spill
		t.stats.cycles.ADTMiss += a.ADTMiss
	}
	t.mu.Unlock()
	if st != nil && res.Telemetry != nil {
		a := res.Telemetry.Attribution
		t.sampleMu.Lock()
		st.sampledBatches++
		st.sampledReqs += uint64(n)
		st.attr.Total += a.Total
		st.attr.FSM += a.FSM
		st.attr.Supply += a.Supply
		st.attr.Spill += a.Spill
		st.attr.ADTMiss += a.ADTMiss
		st.perReq = res.Cycles / float64(n)
		t.sampleMu.Unlock()
	}
	// Breaker view of the batch: every request completed; retries and
	// (when the core fell back) every request count as failure events —
	// the same events the serve/tile<i>/ resilience counters record.
	var fails uint64
	if res.Fault != nil {
		fails = uint64(res.Fault.Retries)
		if res.Fault.FellBack {
			fails += uint64(n)
		}
	}
	t.observeBreaker(uint64(n), fails)
}

// absorb folds a batch System's counters into the tile aggregate. The
// System came out of checkout freshly reset, so its registry snapshot is
// exactly this batch's delta. The snapshot lands in a scratch buffer
// under the tile lock — per-batch snapshot allocation was a measured
// serving-path cost.
func (t *tile) absorb(sys *core.System) {
	t.mu.Lock()
	sys.Telemetry().Registry.SnapshotInto(&t.sysSnap)
	t.sysAgg.Add(t.sysSnap)
	t.mu.Unlock()
}

// cycleTelemetry returns the tile's cycle attribution for telemetry and
// the number of requests that actually ran the cycle model. Exact mode
// reports the measured totals; sampled mode extrapolates each
// (schema, op) stream's sampled cycles to its full request population
// (measured × total/sampled requests), summing streams in sorted key
// order so the float accumulation is deterministic.
func (t *tile) cycleTelemetry() (attr telemetry.Attribution, sampledReqs uint64) {
	if t.srv.opts.CycleMode != CycleSampled {
		t.mu.Lock()
		attr = t.stats.cycles
		n := t.stats.batchRequests
		t.mu.Unlock()
		return attr, n
	}
	t.sampleMu.Lock()
	defer t.sampleMu.Unlock()
	keys := make([]batchKey, 0, len(t.samples))
	for k := range t.samples {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].schema != keys[j].schema {
			return keys[i].schema < keys[j].schema
		}
		return keys[i].op < keys[j].op
	})
	for _, k := range keys {
		st := t.samples[k]
		if st.sampledReqs == 0 {
			continue
		}
		scale := float64(st.totalReqs) / float64(st.sampledReqs)
		attr.Total += st.attr.Total * scale
		attr.FSM += st.attr.FSM * scale
		attr.Supply += st.attr.Supply * scale
		attr.Spill += st.attr.Spill * scale
		attr.ADTMiss += st.attr.ADTMiss * scale
		sampledReqs += st.sampledReqs
	}
	return attr, sampledReqs
}

// CollectTelemetry implements telemetry.Collector for one serve/tile<i>
// group: this tile's execution counters plus its queue and pool state.
func (t *tile) CollectTelemetry(emit func(name string, value float64)) {
	t.mu.Lock()
	st := t.stats
	t.mu.Unlock()
	emit("batches", float64(st.batches))
	emit("batch_requests", float64(st.batchRequests))
	emit("fallbacks/accel", float64(st.accelFallbacks))
	emit("fallbacks/server", float64(st.serverFallbacks))
	emit("retries", float64(st.retryEvents))
	emit("steals", float64(st.steals))
	emit("stolen_requests", float64(st.stolenRequests))
	emit("queue/depth", float64(len(t.queue)))
	cyc, sampled := t.cycleTelemetry()
	emit("cycles/accel", cyc.Total)
	emit("cycles/fsm", cyc.FSM)
	emit("cycles/supply", cyc.Supply)
	emit("cycles/spill", cyc.Spill)
	emit("cycles/adt_stall", cyc.ADTMiss)
	emit("cycles/sampled_requests", float64(sampled))
}

// splitmix64 is the same mixing function the fault scheduler uses: a
// cheap, high-quality hash of the routing sequence number, so
// power-of-two-choices candidate picks are reproducible for a given
// arrival order without any locked RNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
