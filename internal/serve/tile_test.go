package serve

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"protoacc/internal/faults"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/schema"
)

// runBatchedCounters drives one server with preformed batches and returns
// responses plus the tile-count-independent aggregated counter view.
func runBatchedCounters(t *testing.T, opts Options, reqs []Request) ([]Response, map[string]float64) {
	t.Helper()
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	client := srv.InProc()
	resps, err := client.DoBatch(append([]Request(nil), reqs...))
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	srv.Close()
	return resps, srv.AggregatedCounters()
}

// A 1-tile server and an N-tile server in deterministic round-robin mode
// must produce bitwise-identical responses and identical aggregated
// serve/ counters for the same preformed batches: sharding is a capacity
// knob, not an observable. (Responses are tile-independent under any
// routing; the aggregated counters are compared in round-robin mode,
// where batch→tile placement is a pure function of submission order.)
func TestServeTileDeterminism(t *testing.T) {
	reqs := sampleRequests(DefaultCatalog(), 8)

	one := testOptions()
	one.Tiles = 1
	one.Routing = RouteRoundRobin

	four := testOptions()
	four.Tiles = 4
	four.Routing = RouteRoundRobin
	four.Workers = 4

	ra, ca := runBatchedCounters(t, one, reqs)
	rb, cb := runBatchedCounters(t, four, reqs)

	if len(ra) != len(rb) {
		t.Fatalf("response counts differ: 1-tile=%d 4-tile=%d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Status != rb[i].Status || ra[i].FellBack != rb[i].FellBack {
			t.Errorf("response %d: status/fallback differ: 1-tile=%+v 4-tile=%+v", i, ra[i], rb[i])
		}
		if !bytes.Equal(ra[i].Payload, rb[i].Payload) {
			t.Errorf("response %d: payload bytes differ between 1-tile and 4-tile runs", i)
		}
		if ra[i].Cycles != rb[i].Cycles {
			t.Errorf("response %d: cycles differ: 1-tile=%v 4-tile=%v", i, ra[i].Cycles, rb[i].Cycles)
		}
	}
	if len(ca) != len(cb) {
		t.Fatalf("aggregated counter shapes differ: 1-tile=%d 4-tile=%d", len(ca), len(cb))
	}
	for name, va := range ca {
		vb, ok := cb[name]
		if !ok {
			t.Errorf("counter %s present in 1-tile run, missing in 4-tile run", name)
			continue
		}
		if va != vb {
			t.Errorf("counter %s: 1-tile=%v 4-tile=%v", name, va, vb)
		}
	}
}

// The per-tile groups must partition the aggregate: summing each
// execution counter across serve/tile<i>/ groups must reproduce the
// serve/ total, and with round-robin routing every tile must have run
// batches.
func TestServeTileCountersPartitionAggregate(t *testing.T) {
	opts := testOptions()
	opts.Tiles = 4
	opts.Routing = RouteRoundRobin
	opts.Workers = 4
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	client := srv.InProc()
	if _, err := client.DoBatch(sampleRequests(DefaultCatalog(), 8)); err != nil {
		srv.Close()
		t.Fatal(err)
	}
	srv.Close()
	snap := srv.TelemetrySnapshot()
	counters := make(map[string]float64, snap.Len())
	for _, sm := range snap.Samples() {
		counters[sm.Name] = sm.Value
	}
	for _, name := range []string{"batches", "batch_requests", "fallbacks/accel", "fallbacks/server", "retries", "steals"} {
		var sum float64
		for i := 0; i < opts.Tiles; i++ {
			sum += counters[fmt.Sprintf("serve/tile%d/%s", i, name)]
		}
		if total := counters["serve/"+name]; sum != total {
			t.Errorf("%s: per-tile sum %v != aggregate %v", name, sum, total)
		}
	}
	for i := 0; i < opts.Tiles; i++ {
		if counters[fmt.Sprintf("serve/tile%d/batches", i)] == 0 {
			t.Errorf("tile %d ran no batches under round-robin routing", i)
		}
	}
	if counters["serve/steals"] != 0 {
		t.Errorf("work stealing fired in deterministic round-robin mode: %v steals", counters["serve/steals"])
	}
}

// With the fault schedule confined to one tile, that tile must degrade
// alone: its neighbours keep serving on the accelerator path with zero
// fault activity (no injections in their System aggregates, no fallbacks
// or retries in their serve counters), and every response — from the
// poisoned tile included — stays byte-identical to the software codec.
func TestServeTileFaultQuarantine(t *testing.T) {
	const faultTile = 1
	opts := testOptions()
	opts.Tiles = 4
	opts.Routing = RouteRoundRobin
	opts.Workers = 4
	opts.Faults = faults.Config{Enabled: true, Seed: 1234, Rate: 0.2}
	opts.FaultTiles = []int{faultTile}
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	reqs := sampleRequests(DefaultCatalog(), 16)
	client := srv.InProc()
	resps, err := client.DoBatch(reqs)
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	srv.Close()
	for i, resp := range resps {
		if resp.Status != StatusOK {
			t.Fatalf("request %d: status %v under quarantined faults: %s", i, resp.Status, resp.Payload)
		}
		if !bytes.Equal(resp.Payload, reqs[i].Payload) {
			t.Errorf("request %d: response diverges from software codec (fellBack=%v)", i, resp.FellBack)
		}
	}
	var faultActivity float64
	for i, tile := range srv.tiles {
		tile.mu.Lock()
		st := tile.stats
		var injected float64
		for _, sm := range tile.sysAgg.Snapshot().Samples() {
			if len(sm.Name) > 7 && sm.Name[:7] == "faults/" {
				injected += sm.Value
			}
		}
		tile.mu.Unlock()
		if i == faultTile {
			faultActivity = injected + float64(st.retryEvents+st.accelFallbacks+st.serverFallbacks)
			continue
		}
		if st.accelFallbacks != 0 || st.serverFallbacks != 0 || st.retryEvents != 0 {
			t.Errorf("healthy tile %d shows fault recovery: accelFB=%d serverFB=%d retries=%d",
				i, st.accelFallbacks, st.serverFallbacks, st.retryEvents)
		}
		if injected != 0 {
			t.Errorf("healthy tile %d injected %v faults", i, injected)
		}
		if st.batches == 0 {
			t.Errorf("healthy tile %d served no batches while tile %d was poisoned", i, faultTile)
		}
	}
	if faultActivity == 0 {
		t.Errorf("fault schedule at rate 0.2 never fired on tile %d", faultTile)
	}
}

// A queued job carrying more pendings than MaxBatch must be flushed in
// MaxBatch-sized chunks: submitting the accumulated group whole would
// produce a batch larger than the Systems were sized for. 9 pendings at
// MaxBatch 4 must run as ceil(9/4) = 3 batches, not 1.
func TestDispatchFlushChunksAtMaxBatch(t *testing.T) {
	opts := testOptions() // MaxBatch 4
	opts.Workers = 1
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	entry := srv.Catalog().Lookup("varint")
	const n = 9
	var pendings []*pending
	for i := 0; i < n; i++ {
		p, ok := srv.admit("test", Request{ID: uint64(i + 1), Op: OpDeserialize, Schema: "varint", Payload: entry.SamplePayload(i)})
		if !ok {
			t.Fatalf("request %d rejected at admission: %+v", i, <-p.resp)
		}
		pendings = append(pendings, p)
	}
	// A single non-preformed job carrying every pending: the dispatcher
	// must not hand this to an executor in one piece.
	srv.tiles[0].queue <- batchJob{key: batchKey{schema: "varint", op: OpDeserialize}, pendings: pendings}
	for i, p := range pendings {
		resp := <-p.resp
		if resp.Status != StatusOK {
			t.Fatalf("pending %d: status %v: %s", i, resp.Status, resp.Payload)
		}
		if !bytes.Equal(resp.Payload, entry.SamplePayload(i)) {
			t.Errorf("pending %d: payload diverges", i)
		}
	}
	srv.Close()
	snap := srv.TelemetrySnapshot()
	batches, _ := snap.Get("serve/batches")
	batchReqs, _ := snap.Get("serve/batch_requests")
	if batchReqs != n {
		t.Errorf("batch_requests = %v, want %d", batchReqs, n)
	}
	want := float64((n + opts.MaxBatch - 1) / opts.MaxBatch)
	if batches != want {
		t.Errorf("a %d-pending job at MaxBatch %d ran as %v batches, want %v (MaxBatch-sized chunks)",
			n, opts.MaxBatch, batches, want)
	}
}

// Under power-of-two-choices routing an idle tile must drain a deep
// neighbour: with every job forced onto tile 0 and tile 0 given a single
// executor, tile 1's executor has nothing of its own and must steal.
func TestServeWorkStealing(t *testing.T) {
	opts := testOptions()
	opts.Tiles = 2
	opts.Routing = RoutePowerOfTwo
	opts.Workers = 2 // one executor per tile
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	entry := srv.Catalog().Lookup("varint")
	const n = 256
	var pendings []*pending
	for i := 0; i < n; i++ {
		p, ok := srv.admit("test", Request{ID: uint64(i + 1), Op: OpDeserialize, Schema: "varint", Payload: entry.SamplePayload(i)})
		if !ok {
			t.Fatalf("request %d rejected at admission", i)
		}
		pendings = append(pendings, p)
		// Bypass the router: pile everything onto tile 0 as preformed
		// singles so its queue stays deep while tile 1 sits idle.
		srv.tiles[0].queue <- batchJob{key: batchKey{schema: "varint", op: OpDeserialize}, pendings: []*pending{p}, preformed: true}
	}
	for i, p := range pendings {
		resp := <-p.resp
		if resp.Status != StatusOK {
			t.Fatalf("request %d: status %v: %s", i, resp.Status, resp.Payload)
		}
	}
	srv.tiles[1].mu.Lock()
	steals := srv.tiles[1].stats.steals
	srv.tiles[1].mu.Unlock()
	if steals == 0 {
		t.Errorf("tile 1 stole nothing from a %d-job backlog on tile 0", n)
	}
}

// Sample payloads for two equal-length schema names must come from
// distinct RNG streams. The original seed — the name's length — made
// "varint" and "string" draw identical random sequences, so their payload
// streams were correlated across schemas.
func TestCatalogSeedsDistinctForEqualLengthNames(t *testing.T) {
	if sampleSeed("varint") == sampleSeed("string") {
		t.Fatal("equal-length schema names still collide on the sample-payload seed")
	}
	// Two entries over the same type with the same population function:
	// only the entry name (same length!) differs, so any payload
	// divergence can come solely from the seed.
	typ := mustType("SeedProbe",
		&schema.Field{Name: "f1", Number: 1, Kind: schema.KindUint64})
	pop := func(i int, rng *rand.Rand) *dynamic.Message {
		m := dynamic.New(typ)
		m.SetUint64(1, rng.Uint64())
		return m
	}
	a := newEntry("aaaa", typ, pop)
	b := newEntry("bbbb", typ, pop)
	same := 0
	for i := 0; i < a.NumSamples(); i++ {
		if bytes.Equal(a.SamplePayload(i), b.SamplePayload(i)) {
			same++
		}
	}
	if same == a.NumSamples() {
		t.Errorf("equal-length names %q and %q produced identical payload streams (%d/%d samples equal)",
			a.Name, b.Name, same, a.NumSamples())
	}
}
