// Package cpu models the software protobuf baselines: the same parse and
// serialize algorithms the C++ protobuf library runs, executed over the
// simulated memory's C++-layout objects, with every operation charged
// cycles from a calibrated per-operation cost table. Two parameter sets
// are provided, modelling the paper's two baseline hosts: the BOOM-class
// OoO RISC-V core at 2 GHz ("riscv-boom") and a Xeon E5-2686v4-class core
// at 2.7 GHz ("Xeon").
//
// The models are functionally exact — the serializer produces the same
// bytes as codec.Marshal, the deserializer produces the same object bytes
// as the materializer — so the cycle accounting is attached to real work,
// not to an abstract formula.
package cpu

import (
	"fmt"

	"protoacc/internal/accel/layout"
	"protoacc/internal/pb/schema"
	"protoacc/internal/pb/wire"
	"protoacc/internal/sim/mem"
	"protoacc/internal/sim/memmodel"
)

// Params is the per-operation cycle cost table for one CPU.
type Params struct {
	Name         string
	FrequencyGHz float64

	// Front-end / dispatch costs.
	FieldDispatch  float64 // per-field switch + call overhead in parse/serialize loops
	TagDecode      float64 // decode a field key (excl. per-byte varint work)
	TagEncode      float64 // encode a field key
	SizePassField  float64 // ByteSize visit cost per present field
	MessageSetup   float64 // per (sub-)message call overhead (stack frame, limits)
	BranchMispLoop float64 // charged once per variable-length loop exit (varint)

	// Value handling.
	VarintDecPerByte float64 // per encoded byte in the decode loop
	VarintEncPerByte float64 // per encoded byte in the encode loop
	ZigZag           float64 // zig-zag transform
	FixedLoadStore   float64 // fixed-width value handle cost

	// Memory movement.
	MemcpySetup      float64 // per-memcpy call overhead
	MemcpyBytesPerCy float64 // sustained copy bandwidth, bytes/cycle

	// Allocation and object management.
	StringAlloc     float64 // operator new for a string + header bookkeeping
	FirstTouchPerB  float64 // first-touch cost per byte of freshly allocated payload
	ObjectAlloc     float64 // allocate a sub-message object (arena bump + bookkeeping)
	ObjectInitPer8B float64 // zero/construct cost per 8 bytes of object
	RepeatedAppend  float64 // Add() bookkeeping per element
	ReallocSetup    float64 // growth realloc overhead (plus memcpy of old data)

	// FrontendPressure is charged once per top-level serialize or
	// deserialize call, modelling the I-cache and branch-predictor
	// refill cost of the large branch-heavy generated code the paper's
	// §7 discussion highlights ("a call to serialize or deserialize can
	// even effectively act like an I$ and branch predictor flush").
	// Zero by default: the headline calibration excludes it; ablation A7
	// sweeps it.
	FrontendPressure float64

	// ArenaDiscount scales StringAlloc/ObjectAlloc when the workload
	// uses software arena allocation (§2.3): allocation becomes a
	// pointer bump plus light bookkeeping, and first-touch costs vanish
	// because arena memory is recycled.
	ArenaDiscount float64

	// Memory-system interaction: L1 hits are assumed hidden by the OoO
	// window; only latency beyond HiddenLatency cycles is charged.
	HiddenLatency uint64
}

// BOOMParams models the SonicBOOM-class core (comparable to an ARM A72,
// per the paper) at 2 GHz.
func BOOMParams() Params {
	return Params{
		Name:             "riscv-boom",
		FrequencyGHz:     2.0,
		FieldDispatch:    14,
		TagDecode:        4,
		TagEncode:        4,
		SizePassField:    7,
		MessageSetup:     22,
		BranchMispLoop:   9,
		VarintDecPerByte: 4,
		VarintEncPerByte: 4.5,
		ZigZag:           1,
		FixedLoadStore:   3,
		MemcpySetup:      16,
		MemcpyBytesPerCy: 16, // 128-bit TileLink datapath copies
		StringAlloc:      300,
		FirstTouchPerB:   0.7,
		ObjectAlloc:      180,
		ObjectInitPer8B:  2,
		RepeatedAppend:   14,
		ReallocSetup:     40,
		ArenaDiscount:    0.15,
		HiddenLatency:    2,
	}
}

// XeonParams models one core (2 HT) of a Xeon E5-2686 v4 at 2.7 GHz
// turbo: wider issue, better branch prediction, AVX memcpy, tcmalloc.
func XeonParams() Params {
	return Params{
		Name:             "Xeon",
		FrequencyGHz:     2.7,
		FieldDispatch:    4.5,
		TagDecode:        1.5,
		TagEncode:        1.0,
		SizePassField:    2.0,
		MessageSetup:     16,
		BranchMispLoop:   8,
		VarintDecPerByte: 1.2,
		VarintEncPerByte: 0.8,
		ZigZag:           0.5,
		FixedLoadStore:   1,
		MemcpySetup:      14,
		MemcpyBytesPerCy: 20, // AVX2 copies, DRAM-limited sustained
		StringAlloc:      210,
		FirstTouchPerB:   0.5,
		ObjectAlloc:      130,
		ObjectInitPer8B:  0.6,
		RepeatedAppend:   9,
		ReallocSetup:     15,
		ArenaDiscount:    0.35,
		HiddenLatency:    4,
	}
}

// CPU executes protobuf operations over simulated memory with cycle
// accounting.
type CPU struct {
	P    Params
	Mem  *mem.Memory
	Port *memmodel.Port
	Heap *mem.Allocator // deserialization allocations
	Reg  *layout.Registry

	// UseArena switches deserialization allocation to software arena
	// costs (§2.3): production services at scale commonly construct
	// messages on arenas, and the paper notes the accelerator's arena
	// support pairs with software arena migration (§7).
	UseArena bool

	cycles float64

	// Operation counters (telemetry only; no cycle effect).
	serializes   uint64
	deserializes uint64
	clears       uint64
	copies       uint64
	merges       uint64
}

// New creates a CPU model.
func New(p Params, m *mem.Memory, port *memmodel.Port, heap *mem.Allocator, reg *layout.Registry) *CPU {
	return &CPU{P: p, Mem: m, Port: port, Heap: heap, Reg: reg}
}

// Cycles returns the cycles accumulated so far.
func (c *CPU) Cycles() float64 { return c.cycles }

// ResetCycles zeroes the accumulator and the operation counters.
func (c *CPU) ResetCycles() {
	c.cycles = 0
	c.serializes, c.deserializes, c.clears, c.copies, c.merges = 0, 0, 0, 0, 0
}

// CollectTelemetry implements the telemetry Collector contract.
func (c *CPU) CollectTelemetry(emit func(name string, value float64)) {
	emit("cycles", c.cycles)
	emit("serializes", float64(c.serializes))
	emit("deserializes", float64(c.deserializes))
	emit("clears", float64(c.clears))
	emit("copies", float64(c.copies))
	emit("merges", float64(c.merges))
}

// Seconds converts a cycle count to seconds at this CPU's frequency.
func (c *CPU) Seconds(cycles float64) float64 {
	return cycles / (c.P.FrequencyGHz * 1e9)
}

// charge adds op cycles.
func (c *CPU) charge(cy float64) { c.cycles += cy }

// access charges a demand memory access, hiding latency up to
// HiddenLatency (an OoO core overlaps L1 hits with computation).
func (c *CPU) access(addr, size uint64) {
	lat := c.Port.Access(addr, size)
	if lat > c.P.HiddenLatency {
		c.cycles += float64(lat - c.P.HiddenLatency)
	}
}

// stream charges a streaming access (sequential buffer traffic).
func (c *CPU) stream(addr, size uint64) {
	lat := c.Port.StreamAccess(addr, size)
	if lat > c.P.HiddenLatency {
		c.cycles += float64(lat - c.P.HiddenLatency)
	}
}

// memcpyCost charges the compute cost of copying n bytes (memory traffic
// charged separately by the caller).
func (c *CPU) memcpyCost(n uint64) {
	c.charge(c.P.MemcpySetup + float64(n)/c.P.MemcpyBytesPerCy)
}

// --- serialization ---

// Serialize performs ByteSize + serialize of the object at objAddr (type
// t), writing the wire bytes into space allocated from out. Returns the
// output address and length.
func (c *CPU) Serialize(t *schema.Message, objAddr uint64, out *mem.Allocator) (uint64, uint64, error) {
	c.serializes++
	c.charge(c.P.FrontendPressure)
	sizes := make(map[uint64]uint64) // the C++ cached_size fields
	n, err := c.sizePass(t, objAddr, sizes)
	if err != nil {
		return 0, 0, err
	}
	outAddr, err := out.Alloc(n, 8)
	if err != nil {
		return 0, 0, err
	}
	end, err := c.serializeTo(t, objAddr, outAddr, sizes)
	if err != nil {
		return 0, 0, err
	}
	if end != outAddr+n {
		return 0, 0, fmt.Errorf("cpu: serialize wrote %d bytes, ByteSize said %d", end-outAddr, n)
	}
	return outAddr, n, nil
}

// sizePass computes the serialized size, charging ByteSize costs and
// caching per-object sizes (cached_size).
func (c *CPU) sizePass(t *schema.Message, objAddr uint64, sizes map[uint64]uint64) (uint64, error) {
	l := c.Reg.Layout(t)
	c.charge(c.P.MessageSetup)
	// Read the hasbits words once per message.
	for w := 0; w < l.HasbitsWords; w++ {
		c.access(objAddr+layout.HasbitsOffset+uint64(w)*8, 8)
	}
	var total uint64
	for _, fl := range l.Fields {
		present, err := c.hasbit(objAddr, l, fl.Field.Number)
		if err != nil {
			return 0, err
		}
		if !present {
			continue
		}
		c.charge(c.P.SizePassField)
		n, err := c.fieldSize(objAddr, l, fl, sizes)
		if err != nil {
			return 0, err
		}
		total += n
	}
	sizes[objAddr] = total
	return total, nil
}

func (c *CPU) hasbit(objAddr uint64, l *layout.Layout, num int32) (bool, error) {
	idx := uint64(num - l.MinField)
	// Word assumed register-cached after the per-message read; the bit
	// test itself is free (folded into FieldDispatch).
	w, err := c.Mem.Read64(objAddr + layout.HasbitsOffset + (idx/64)*8)
	if err != nil {
		return false, err
	}
	return w>>(idx%64)&1 == 1, nil
}

// scalarWireBytes returns the wire size of a scalar with the given stored
// bits, charging varint size computation.
func (c *CPU) scalarWireBytes(f *schema.Field, bits uint64) uint64 {
	switch f.Kind {
	case schema.KindFloat, schema.KindFixed32, schema.KindSfixed32:
		return 4
	case schema.KindDouble, schema.KindFixed64, schema.KindSfixed64:
		return 8
	case schema.KindBool:
		return 1
	case schema.KindSint32:
		return uint64(wire.SizeVarint(wire.EncodeZigZag32(int32(bits))))
	case schema.KindSint64:
		return uint64(wire.SizeVarint(wire.EncodeZigZag64(int64(bits))))
	case schema.KindUint32:
		return uint64(wire.SizeVarint(uint64(uint32(bits))))
	case schema.KindInt32, schema.KindEnum:
		return uint64(wire.SizeVarint(uint64(int64(int32(bits)))))
	default:
		return uint64(wire.SizeVarint(bits))
	}
}

func (c *CPU) readSlot(addr, slot uint64, k schema.Kind) (uint64, error) {
	c.access(addr, slot)
	switch slot {
	case 1:
		b, err := c.Mem.Read8(addr)
		return uint64(b), err
	case 4:
		v, err := c.Mem.Read32(addr)
		if err != nil {
			return 0, err
		}
		switch k {
		case schema.KindInt32, schema.KindSint32, schema.KindSfixed32, schema.KindEnum:
			return uint64(int64(int32(v))), nil
		}
		return uint64(v), nil
	default:
		return c.Mem.Read64(addr)
	}
}

func slotWidth(f *schema.Field) uint64 {
	switch f.Kind {
	case schema.KindBool:
		return 1
	case schema.KindInt32, schema.KindUint32, schema.KindSint32,
		schema.KindFixed32, schema.KindSfixed32, schema.KindFloat, schema.KindEnum:
		return 4
	default:
		return 8
	}
}

func (c *CPU) fieldSize(objAddr uint64, l *layout.Layout, fl layout.FieldLayout, sizes map[uint64]uint64) (uint64, error) {
	f := fl.Field
	slotAddr := objAddr + fl.Offset
	tag := uint64(wire.SizeTag(f.Number))
	switch {
	case f.Repeated():
		return c.repeatedSize(slotAddr, f, tag, sizes)
	case f.Kind == schema.KindMessage:
		c.access(slotAddr, 8)
		ptr, err := c.Mem.Read64(slotAddr)
		if err != nil {
			return 0, err
		}
		if ptr == 0 {
			return 0, nil
		}
		n, err := c.sizePass(f.Message, ptr, sizes)
		if err != nil {
			return 0, err
		}
		return tag + uint64(wire.SizeVarint(n)) + n, nil
	case f.Kind.Class() == schema.ClassBytesLike:
		c.access(slotAddr+8, 8) // length load
		n, err := c.Mem.Read64(slotAddr + 8)
		if err != nil {
			return 0, err
		}
		return tag + uint64(wire.SizeVarint(n)) + n, nil
	default:
		bits, err := c.readSlot(slotAddr, fl.Slot, f.Kind)
		if err != nil {
			return 0, err
		}
		return tag + c.scalarWireBytes(f, bits), nil
	}
}

func (c *CPU) repeatedSize(slotAddr uint64, f *schema.Field, tag uint64, sizes map[uint64]uint64) (uint64, error) {
	c.access(slotAddr, 16)
	buf, err := c.Mem.Read64(slotAddr)
	if err != nil {
		return 0, err
	}
	n, err := c.Mem.Read64(slotAddr + 8)
	if err != nil {
		return 0, err
	}
	es := layout.ElemSize(f)
	var body uint64
	switch {
	case f.Kind == schema.KindMessage:
		for i := uint64(0); i < n; i++ {
			c.access(buf+i*es, 8)
			ptr, err := c.Mem.Read64(buf + i*es)
			if err != nil {
				return 0, err
			}
			sub, err := c.sizePass(f.Message, ptr, sizes)
			if err != nil {
				return 0, err
			}
			body += tag + uint64(wire.SizeVarint(sub)) + sub
		}
		return body, nil
	case f.Kind.Class() == schema.ClassBytesLike:
		for i := uint64(0); i < n; i++ {
			c.access(buf+i*es+8, 8)
			sl, err := c.Mem.Read64(buf + i*es + 8)
			if err != nil {
				return 0, err
			}
			c.charge(c.P.SizePassField / 2)
			body += tag + uint64(wire.SizeVarint(sl)) + sl
		}
		return body, nil
	default:
		for i := uint64(0); i < n; i++ {
			bits, err := c.readSlot(buf+i*es, es, f.Kind)
			if err != nil {
				return 0, err
			}
			c.charge(1) // per-element size loop
			body += c.scalarWireBytes(f, bits)
		}
		if f.Packed {
			return tag + uint64(wire.SizeVarint(body)) + body, nil
		}
		return tag*n + body, nil
	}
}

// writeVarint writes a varint to out, charging encode costs, and returns
// the next output address.
func (c *CPU) writeVarint(out uint64, v uint64) (uint64, error) {
	enc := wire.AppendVarint(nil, v)
	c.charge(float64(len(enc))*c.P.VarintEncPerByte + c.P.BranchMispLoop)
	c.stream(out, uint64(len(enc)))
	if err := c.Mem.WriteBytes(out, enc); err != nil {
		return 0, err
	}
	return out + uint64(len(enc)), nil
}

func (c *CPU) serializeTo(t *schema.Message, objAddr, out uint64, sizes map[uint64]uint64) (uint64, error) {
	l := c.Reg.Layout(t)
	c.charge(c.P.MessageSetup)
	for _, fl := range l.Fields {
		present, err := c.hasbit(objAddr, l, fl.Field.Number)
		if err != nil {
			return 0, err
		}
		c.charge(c.P.FieldDispatch / 4) // absent-field skip cost
		if !present {
			continue
		}
		c.charge(c.P.FieldDispatch)
		out, err = c.serializeField(objAddr, out, l, fl, sizes)
		if err != nil {
			return 0, err
		}
	}
	return out, nil
}

func (c *CPU) writeTag(out uint64, num int32, wt wire.Type) (uint64, error) {
	c.charge(c.P.TagEncode)
	return c.writeVarint(out, wire.MakeTag(num, wt))
}

// writeTagLoop writes a tag inside a repeated-element loop: the tag is
// loop-invariant, so its encode branch is perfectly predicted and the
// bytes are usually pre-rendered (no BranchMispLoop charge).
func (c *CPU) writeTagLoop(out uint64, num int32, wt wire.Type) (uint64, error) {
	enc := wire.AppendVarint(nil, wire.MakeTag(num, wt))
	c.charge(c.P.TagEncode/2 + float64(len(enc))*c.P.VarintEncPerByte)
	c.stream(out, uint64(len(enc)))
	if err := c.Mem.WriteBytes(out, enc); err != nil {
		return 0, err
	}
	return out + uint64(len(enc)), nil
}

func (c *CPU) serializeScalarValue(out uint64, f *schema.Field, bits uint64) (uint64, error) {
	switch f.Kind {
	case schema.KindFloat, schema.KindFixed32, schema.KindSfixed32:
		c.charge(c.P.FixedLoadStore)
		c.stream(out, 4)
		if err := c.Mem.Write32(out, uint32(bits)); err != nil {
			return 0, err
		}
		return out + 4, nil
	case schema.KindDouble, schema.KindFixed64, schema.KindSfixed64:
		c.charge(c.P.FixedLoadStore)
		c.stream(out, 8)
		if err := c.Mem.Write64(out, bits); err != nil {
			return 0, err
		}
		return out + 8, nil
	case schema.KindSint32:
		c.charge(c.P.ZigZag)
		return c.writeVarint(out, wire.EncodeZigZag32(int32(bits)))
	case schema.KindSint64:
		c.charge(c.P.ZigZag)
		return c.writeVarint(out, wire.EncodeZigZag64(int64(bits)))
	case schema.KindUint32:
		return c.writeVarint(out, uint64(uint32(bits)))
	case schema.KindInt32, schema.KindEnum:
		return c.writeVarint(out, uint64(int64(int32(bits))))
	case schema.KindBool:
		c.charge(1)
		c.stream(out, 1)
		var b byte
		if bits != 0 {
			b = 1
		}
		if err := c.Mem.Write8(out, b); err != nil {
			return 0, err
		}
		return out + 1, nil
	default:
		return c.writeVarint(out, bits)
	}
}

// copyBytes copies n bytes of payload from src to dst, charging both the
// memcpy compute cost and the streaming memory traffic.
func (c *CPU) copyBytes(dst, src, n uint64) error {
	c.memcpyCost(n)
	c.stream(src, n)
	c.stream(dst, n)
	if n == 0 {
		return nil
	}
	s, err := c.Mem.View(src, n)
	if err != nil {
		return err
	}
	return c.Mem.WriteBytes(dst, s)
}

func (c *CPU) serializeField(objAddr, out uint64, l *layout.Layout, fl layout.FieldLayout, sizes map[uint64]uint64) (uint64, error) {
	f := fl.Field
	slotAddr := objAddr + fl.Offset
	switch {
	case f.Repeated():
		return c.serializeRepeated(slotAddr, out, f, sizes)
	case f.Kind == schema.KindMessage:
		ptr, err := c.Mem.Read64(slotAddr) // already charged during size pass; charge light reload
		if err != nil {
			return 0, err
		}
		c.access(slotAddr, 8)
		if ptr == 0 {
			return out, nil
		}
		out, err = c.writeTag(out, f.Number, wire.TypeBytes)
		if err != nil {
			return 0, err
		}
		out, err = c.writeVarint(out, sizes[ptr])
		if err != nil {
			return 0, err
		}
		return c.serializeTo(f.Message, ptr, out, sizes)
	case f.Kind.Class() == schema.ClassBytesLike:
		c.access(slotAddr, 16)
		ptr, err := c.Mem.Read64(slotAddr)
		if err != nil {
			return 0, err
		}
		n, err := c.Mem.Read64(slotAddr + 8)
		if err != nil {
			return 0, err
		}
		out, err = c.writeTag(out, f.Number, wire.TypeBytes)
		if err != nil {
			return 0, err
		}
		out, err = c.writeVarint(out, n)
		if err != nil {
			return 0, err
		}
		if err := c.copyBytes(out, ptr, n); err != nil {
			return 0, err
		}
		return out + n, nil
	default:
		bits, err := c.readSlot(slotAddr, fl.Slot, f.Kind)
		if err != nil {
			return 0, err
		}
		out, err = c.writeTag(out, f.Number, f.Kind.WireType())
		if err != nil {
			return 0, err
		}
		return c.serializeScalarValue(out, f, bits)
	}
}

func (c *CPU) serializeRepeated(slotAddr, out uint64, f *schema.Field, sizes map[uint64]uint64) (uint64, error) {
	c.access(slotAddr, 16)
	buf, err := c.Mem.Read64(slotAddr)
	if err != nil {
		return 0, err
	}
	n, err := c.Mem.Read64(slotAddr + 8)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return out, nil
	}
	es := layout.ElemSize(f)
	switch {
	case f.Kind == schema.KindMessage:
		for i := uint64(0); i < n; i++ {
			c.charge(c.P.FieldDispatch / 2)
			c.access(buf+i*es, 8)
			ptr, err := c.Mem.Read64(buf + i*es)
			if err != nil {
				return 0, err
			}
			out, err = c.writeTag(out, f.Number, wire.TypeBytes)
			if err != nil {
				return 0, err
			}
			out, err = c.writeVarint(out, sizes[ptr])
			if err != nil {
				return 0, err
			}
			out, err = c.serializeTo(f.Message, ptr, out, sizes)
			if err != nil {
				return 0, err
			}
		}
		return out, nil
	case f.Kind.Class() == schema.ClassBytesLike:
		for i := uint64(0); i < n; i++ {
			c.charge(c.P.FieldDispatch / 2)
			c.access(buf+i*es, 16)
			ptr, err := c.Mem.Read64(buf + i*es)
			if err != nil {
				return 0, err
			}
			sl, err := c.Mem.Read64(buf + i*es + 8)
			if err != nil {
				return 0, err
			}
			out, err = c.writeTagLoop(out, f.Number, wire.TypeBytes)
			if err != nil {
				return 0, err
			}
			out, err = c.writeVarint(out, sl)
			if err != nil {
				return 0, err
			}
			if err := c.copyBytes(out, ptr, sl); err != nil {
				return 0, err
			}
			out += sl
		}
		return out, nil
	case f.Packed:
		var body uint64
		for i := uint64(0); i < n; i++ {
			bits, err := c.readSlot(buf+i*es, es, f.Kind)
			if err != nil {
				return 0, err
			}
			body += c.scalarWireBytes(f, bits)
		}
		out, err = c.writeTag(out, f.Number, wire.TypeBytes)
		if err != nil {
			return 0, err
		}
		out, err = c.writeVarint(out, body)
		if err != nil {
			return 0, err
		}
		for i := uint64(0); i < n; i++ {
			bits, err := c.readSlot(buf+i*es, es, f.Kind)
			if err != nil {
				return 0, err
			}
			c.charge(1)
			out, err = c.serializeScalarValue(out, f, bits)
			if err != nil {
				return 0, err
			}
		}
		return out, nil
	default:
		for i := uint64(0); i < n; i++ {
			bits, err := c.readSlot(buf+i*es, es, f.Kind)
			if err != nil {
				return 0, err
			}
			c.charge(1)
			out, err = c.writeTagLoop(out, f.Number, f.Kind.WireType())
			if err != nil {
				return 0, err
			}
			out, err = c.serializeScalarValue(out, f, bits)
			if err != nil {
				return 0, err
			}
		}
		return out, nil
	}
}

// ChargeTableWrites charges the per-present-field programming-table
// construction cost of the Optimus-Prime-style baseline (§3.7): entry
// rendering and bookkeeping per present field (the stores themselves are
// charged via ChargeAccess by the builder).
func (c *CPU) ChargeTableWrites(n int) {
	c.charge(float64(n) * (c.P.FieldDispatch/2 + 3))
}

// ChargeAccess charges one demand memory access performed by host-side
// helper code modelled outside this package.
func (c *CPU) ChargeAccess(addr, size uint64) {
	c.access(addr, size)
}
