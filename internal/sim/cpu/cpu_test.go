package cpu

import (
	"bytes"
	"math/rand"
	"testing"

	"protoacc/internal/accel/layout"
	"protoacc/internal/pb/codec"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/pbtest"
	"protoacc/internal/pb/schema"
	"protoacc/internal/sim/mem"
	"protoacc/internal/sim/memmodel"
)

// rig wires up a memory, ports, heap, and a CPU model for tests.
type rig struct {
	mem  *mem.Memory
	heap *mem.Allocator
	out  *mem.Allocator
	reg  *layout.Registry
	mat  *layout.Materializer
	cpu  *CPU
}

func newRig(t *testing.T, p Params) *rig {
	t.Helper()
	m := mem.New()
	heap := mem.NewAllocator(m.Map("heap", 64<<20))
	out := mem.NewAllocator(m.Map("out", 64<<20))
	reg := layout.NewRegistry()
	sys := memmodel.NewSystem(memmodel.DefaultConfig())
	c := New(p, m, sys.NewPort(p.Name), heap, reg)
	return &rig{mem: m, heap: heap, out: out, reg: reg,
		mat: layout.NewMaterializer(m, heap, reg), cpu: c}
}

// serializeViaCPU materializes msg and serializes it with the CPU model.
func (r *rig) serializeViaCPU(t *testing.T, msg *dynamic.Message) []byte {
	t.Helper()
	objAddr, err := r.mat.Write(msg)
	if err != nil {
		t.Fatal(err)
	}
	addr, n, err := r.cpu.Serialize(msg.Type(), objAddr, r.out)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, n)
	if err := r.mem.ReadBytes(addr, b); err != nil {
		t.Fatal(err)
	}
	return b
}

// deserializeViaCPU writes wire bytes into memory, parses them with the
// CPU model, and reads the result back as a dynamic message.
func (r *rig) deserializeViaCPU(t *testing.T, typ *schema.Message, b []byte) *dynamic.Message {
	t.Helper()
	bufRegion := r.mem.Map("in", uint64(len(b))+1)
	if err := r.mem.WriteBytes(bufRegion.Base, b); err != nil {
		t.Fatal(err)
	}
	objAddr, err := r.cpu.AllocTopLevel(typ)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.cpu.Deserialize(typ, bufRegion.Base, uint64(len(b)), objAddr); err != nil {
		t.Fatal(err)
	}
	got, err := r.mat.Read(typ, objAddr)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func richType() *schema.Message {
	sub := mustMessage("Sub",
		&schema.Field{Name: "id", Number: 1, Kind: schema.KindInt64},
		&schema.Field{Name: "name", Number: 2, Kind: schema.KindString})
	return mustMessage("Rich",
		&schema.Field{Name: "i32", Number: 1, Kind: schema.KindInt32},
		&schema.Field{Name: "s64", Number: 2, Kind: schema.KindSint64},
		&schema.Field{Name: "f", Number: 3, Kind: schema.KindFloat},
		&schema.Field{Name: "d", Number: 4, Kind: schema.KindDouble},
		&schema.Field{Name: "b", Number: 5, Kind: schema.KindBool},
		&schema.Field{Name: "s", Number: 6, Kind: schema.KindString},
		&schema.Field{Name: "by", Number: 7, Kind: schema.KindBytes},
		&schema.Field{Name: "sub", Number: 8, Kind: schema.KindMessage, Message: sub},
		&schema.Field{Name: "ri", Number: 9, Kind: schema.KindInt32, Label: schema.LabelRepeated},
		&schema.Field{Name: "rp", Number: 10, Kind: schema.KindInt64, Label: schema.LabelRepeated, Packed: true},
		&schema.Field{Name: "rs", Number: 11, Kind: schema.KindString, Label: schema.LabelRepeated},
		&schema.Field{Name: "rm", Number: 12, Kind: schema.KindMessage, Message: sub, Label: schema.LabelRepeated},
		&schema.Field{Name: "fx", Number: 13, Kind: schema.KindFixed32},
		&schema.Field{Name: "sf", Number: 14, Kind: schema.KindSfixed64},
	)
}

func populateRich(typ *schema.Message) *dynamic.Message {
	m := dynamic.New(typ)
	m.SetInt32(1, -42)
	m.SetInt64(2, -1e15)
	m.SetFloat(3, 1.5)
	m.SetDouble(4, -2.5)
	m.SetBool(5, true)
	m.SetString(6, "a string of moderate length")
	m.SetBytes(7, bytes.Repeat([]byte{0xab}, 100))
	sub := m.MutableMessage(8)
	sub.SetInt64(1, 7)
	sub.SetString(2, "nested")
	for i := int32(0); i < 6; i++ {
		m.AddScalarBits(9, uint64(int64(i*100)))
		m.AddScalarBits(10, uint64(int64(-i)))
	}
	m.AddString(11, "alpha")
	m.AddString(11, "beta")
	rm := m.AddMessage(12)
	rm.SetInt64(1, 1)
	m.AddMessage(12).SetString(2, "second")
	m.SetUint32(13, 0xdeadbeef)
	m.SetInt64(14, -99)
	return m
}

func TestSerializeMatchesCodec(t *testing.T) {
	for _, p := range []Params{BOOMParams(), XeonParams()} {
		r := newRig(t, p)
		msg := populateRich(richType())
		want, err := codec.Marshal(msg)
		if err != nil {
			t.Fatal(err)
		}
		got := r.serializeViaCPU(t, msg)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: CPU serializer output differs from reference (%d vs %d bytes)", p.Name, len(got), len(want))
		}
		if r.cpu.Cycles() <= 0 {
			t.Errorf("%s: no cycles charged", p.Name)
		}
	}
}

func TestDeserializeMatchesCodec(t *testing.T) {
	for _, p := range []Params{BOOMParams(), XeonParams()} {
		r := newRig(t, p)
		msg := populateRich(richType())
		b, err := codec.Marshal(msg)
		if err != nil {
			t.Fatal(err)
		}
		got := r.deserializeViaCPU(t, msg.Type(), b)
		if !msg.Equal(got) {
			t.Errorf("%s: CPU deserializer result differs from source message", p.Name)
		}
	}
}

func TestRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 60; trial++ {
		typ := pbtest.RandomSchema(rng, pbtest.DefaultSchemaConfig())
		msg := pbtest.RandomPopulated(rng, typ, pbtest.DefaultMessageConfig())
		want, err := codec.Marshal(msg)
		if err != nil {
			t.Fatal(err)
		}

		r := newRig(t, BOOMParams())
		got := r.serializeViaCPU(t, msg)
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: serialize mismatch", trial)
		}
		back := r.deserializeViaCPU(t, typ, want)
		if !msg.Equal(back) {
			t.Fatalf("trial %d: deserialize mismatch", trial)
		}
	}
}

func TestUnknownFieldsSkipped(t *testing.T) {
	rich := mustMessage("M",
		&schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32},
		&schema.Field{Name: "z", Number: 9, Kind: schema.KindString})
	narrow := mustMessage("M",
		&schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32})
	src := dynamic.New(rich)
	src.SetInt32(1, 5)
	src.SetString(9, "dropped")
	b, _ := codec.Marshal(src)

	r := newRig(t, BOOMParams())
	got := r.deserializeViaCPU(t, narrow, b)
	if got.GetInt32(1) != 5 {
		t.Error("known field lost")
	}
	// The CPU model drops unknown fields (documented divergence).
	if len(got.Unknown) != 0 {
		t.Error("unexpected unknown preservation")
	}
}

func TestMalformedInputs(t *testing.T) {
	typ := richType()
	good, _ := codec.Marshal(populateRich(typ))
	cases := map[string][]byte{
		"truncated tag":    {0x80},
		"truncated varint": {0x08, 0x80},
		"bad length":       {0x32, 0x7f, 0x01},       // string longer than buffer
		"group tag":        {0x0b},                   // start-group for field 1
		"field zero":       {0x00, 0x00},             // tag with field number 0
		"truncated fixed":  {0x1d, 0x01, 0x02},       // float with 2 of 4 bytes
		"overlong":         append(good, 0x32, 0x7f), // trailing bad field
	}
	for name, b := range cases {
		r := newRig(t, BOOMParams())
		region := r.mem.Map("in", uint64(len(b))+1)
		if err := r.mem.WriteBytes(region.Base, b); err != nil {
			t.Fatal(err)
		}
		obj, _ := r.cpu.AllocTopLevel(typ)
		if err := r.cpu.Deserialize(typ, region.Base, uint64(len(b)), obj); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestXeonFasterThanBOOM(t *testing.T) {
	msg := populateRich(richType())
	b, _ := codec.Marshal(msg)

	timeFor := func(p Params) (serSec, deserSec float64) {
		r := newRig(t, p)
		r.cpu.ResetCycles()
		r.serializeViaCPU(t, msg)
		serCycles := r.cpu.Cycles()
		r.cpu.ResetCycles()
		r.deserializeViaCPU(t, msg.Type(), b)
		deserCycles := r.cpu.Cycles()
		return r.cpu.Seconds(serCycles), r.cpu.Seconds(deserCycles)
	}
	bSer, bDes := timeFor(BOOMParams())
	xSer, xDes := timeFor(XeonParams())
	if xSer >= bSer || xDes >= bDes {
		t.Errorf("Xeon should be faster: ser %v vs %v, deser %v vs %v", xSer, bSer, xDes, bDes)
	}
}

func TestLongStringCheaperPerByte(t *testing.T) {
	// Per-byte cost must fall with string length (the memcpy regime the
	// paper identifies for large bytes-like fields).
	perByte := func(n int) float64 {
		typ := mustMessage("M", &schema.Field{Name: "s", Number: 1, Kind: schema.KindString})
		msg := dynamic.New(typ)
		msg.SetBytes(1, bytes.Repeat([]byte{'x'}, n))
		b, _ := codec.Marshal(msg)
		r := newRig(t, BOOMParams())
		r.deserializeViaCPU(t, typ, b)
		return r.cpu.Cycles() / float64(len(b))
	}
	small, large := perByte(8), perByte(64<<10)
	if large >= small {
		t.Errorf("per-byte cost should fall with size: small=%f large=%f", small, large)
	}
	if small/large < 5 {
		t.Errorf("expected a large gap between small (%f) and large (%f) per-byte costs", small, large)
	}
}

func TestRepeatedGrowthFunctional(t *testing.T) {
	// Enough elements to force several reallocations.
	typ := mustMessage("M",
		&schema.Field{Name: "r", Number: 1, Kind: schema.KindInt64, Label: schema.LabelRepeated})
	msg := dynamic.New(typ)
	for i := 0; i < 1000; i++ {
		msg.AddScalarBits(1, uint64(i))
	}
	b, _ := codec.Marshal(msg)
	r := newRig(t, BOOMParams())
	got := r.deserializeViaCPU(t, typ, b)
	if !msg.Equal(got) {
		t.Error("repeated growth lost elements")
	}
}

func TestEmptyMessageDeserialize(t *testing.T) {
	typ := mustMessage("E")
	r := newRig(t, BOOMParams())
	got := r.deserializeViaCPU(t, typ, nil)
	if len(got.PresentFieldNumbers()) != 0 {
		t.Error("empty parse should produce empty message")
	}
}

func TestDepthLimit(t *testing.T) {
	rec := &schema.Message{Name: "R"}
	if err := rec.SetFields([]*schema.Field{
		{Name: "self", Number: 1, Kind: schema.KindMessage, Message: rec},
	}); err != nil {
		t.Fatal(err)
	}
	m := dynamic.New(rec)
	cur := m
	for i := 0; i < maxDepth+3; i++ {
		cur = cur.MutableMessage(1)
	}
	b, _ := codec.Marshal(m)
	r := newRig(t, BOOMParams())
	region := r.mem.Map("in", uint64(len(b))+1)
	if err := r.mem.WriteBytes(region.Base, b); err != nil {
		t.Fatal(err)
	}
	obj, _ := r.cpu.AllocTopLevel(rec)
	if err := r.cpu.Deserialize(rec, region.Base, uint64(len(b)), obj); err == nil {
		t.Error("expected depth error")
	}
}

// mustMessage is the test-local stand-in for the removed
// schema.MustMessage: build a type from known-good literal fields,
// panicking on error. Library code uses schema.NewMessage and returns
// the error.
func mustMessage(name string, fields ...*schema.Field) *schema.Message {
	m, err := schema.NewMessage(name, fields...)
	if err != nil {
		panic(err)
	}
	return m
}
