package cpu

import (
	"errors"
	"fmt"

	"protoacc/internal/accel/layout"
	"protoacc/internal/pb/schema"
	"protoacc/internal/pb/wire"
	"protoacc/internal/sim/mem"
)

// Deserialization errors.
var (
	ErrMalformed = errors.New("cpu: malformed wire input")
	ErrTooDeep   = errors.New("cpu: message nesting exceeds limit")
)

// maxDepth matches codec.MaxNestingDepth.
const maxDepth = 100

// initialRepeatedCap is the initial capacity of a repeated field's buffer,
// mirroring RepeatedField's first growth step.
const initialRepeatedCap = 4

// repKey identifies one repeated field instance during a parse.
type repKey struct {
	obj uint64
	num int32
}

// repState tracks a repeated field's buffer during a parse (the state
// RepeatedField keeps in its header).
type repState struct {
	buf uint64
	len uint64
	cap uint64
}

// deserCtx is per-Deserialize parse state.
type deserCtx struct {
	reps map[repKey]*repState
}

// Deserialize parses bufLen wire bytes at bufAddr into the (caller
// allocated) object at objAddr, allocating sub-objects and payloads from
// the CPU's heap. Unknown fields are skipped (charged but not preserved).
func (c *CPU) Deserialize(t *schema.Message, bufAddr, bufLen, objAddr uint64) error {
	c.deserializes++
	c.charge(c.P.FrontendPressure)
	ctx := &deserCtx{reps: make(map[repKey]*repState)}
	return c.parseMessage(ctx, t, bufAddr, bufLen, objAddr, maxDepth)
}

// readVarintAt decodes a varint from simulated memory at pos (bounded by
// end), charging decode costs.
func (c *CPU) readVarintAt(pos, end uint64) (v uint64, n uint64, err error) {
	window := end - pos
	if window > wire.MaxVarintLen {
		window = wire.MaxVarintLen
	}
	if window == 0 {
		return 0, 0, ErrMalformed
	}
	s, err := c.Mem.View(pos, window)
	if err != nil {
		return 0, 0, err
	}
	val, vn, err := wire.ReadVarint(s)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	c.stream(pos, uint64(vn))
	c.charge(float64(vn)*c.P.VarintDecPerByte + c.P.BranchMispLoop)
	return val, uint64(vn), nil
}

func (c *CPU) parseMessage(ctx *deserCtx, t *schema.Message, bufAddr, bufLen, objAddr uint64, depth int) error {
	if depth <= 0 {
		return ErrTooDeep
	}
	l := c.Reg.Layout(t)
	c.charge(c.P.MessageSetup)
	pos, end := bufAddr, bufAddr+bufLen
	for pos < end {
		c.charge(c.P.TagDecode)
		tag, n, err := c.readVarintAt(pos, end)
		if err != nil {
			return err
		}
		pos += n
		num, wt := wire.SplitTag(tag)
		if num <= 0 || num > wire.MaxFieldNumber || !wt.Valid() {
			return fmt.Errorf("%w: bad tag %d", ErrMalformed, tag)
		}
		f := t.FieldByNumber(num)
		c.charge(c.P.FieldDispatch)
		if f == nil || !compatible(f, wt) {
			pos, err = c.skipValue(pos, end, num, wt)
			if err != nil {
				return err
			}
			continue
		}
		// Set the hasbit (read-modify-write of the sparse word).
		idx := uint64(num - l.MinField)
		hbAddr := objAddr + layout.HasbitsOffset + (idx/64)*8
		c.access(hbAddr, 8)
		w, err := c.Mem.Read64(hbAddr)
		if err != nil {
			return err
		}
		if err := c.Mem.Write64(hbAddr, w|1<<(idx%64)); err != nil {
			return err
		}
		c.charge(1)

		fl := l.FieldByNumber(num)
		pos, err = c.parseField(ctx, f, fl, wt, pos, end, objAddr, depth)
		if err != nil {
			return fmt.Errorf("%s.%s: %w", t.Name, f.Name, err)
		}
	}
	if pos != end {
		return fmt.Errorf("%w: field overruns message bounds", ErrMalformed)
	}
	return nil
}

func compatible(f *schema.Field, wt wire.Type) bool {
	natural := f.Kind.WireType()
	if wt == natural {
		return true
	}
	if f.Repeated() && f.Kind != schema.KindMessage && f.Kind.Class() != schema.ClassBytesLike {
		return wt == wire.TypeBytes
	}
	return false
}

func (c *CPU) skipValue(pos, end uint64, num int32, wt wire.Type) (uint64, error) {
	switch wt {
	case wire.TypeVarint:
		_, n, err := c.readVarintAt(pos, end)
		return pos + n, err
	case wire.TypeFixed32:
		if pos+4 > end {
			return 0, ErrMalformed
		}
		return pos + 4, nil
	case wire.TypeFixed64:
		if pos+8 > end {
			return 0, ErrMalformed
		}
		return pos + 8, nil
	case wire.TypeBytes:
		n, vn, err := c.readVarintAt(pos, end)
		if err != nil {
			return 0, err
		}
		if pos+vn+n > end {
			return 0, ErrMalformed
		}
		return pos + vn + n, nil
	default:
		return 0, fmt.Errorf("%w: group wire type %v", ErrMalformed, wt)
	}
}

// decodeScalarAt decodes one scalar value of kind k at pos, returning the
// stored bit pattern (sign-extended where the layout expects it).
func (c *CPU) decodeScalarAt(f *schema.Field, pos, end uint64) (bits uint64, n uint64, err error) {
	switch f.Kind.WireType() {
	case wire.TypeFixed32:
		if pos+4 > end {
			return 0, 0, ErrMalformed
		}
		c.stream(pos, 4)
		c.charge(c.P.FixedLoadStore)
		v, err := c.Mem.Read32(pos)
		if err != nil {
			return 0, 0, err
		}
		if f.Kind == schema.KindSfixed32 {
			return uint64(int64(int32(v))), 4, nil
		}
		return uint64(v), 4, nil
	case wire.TypeFixed64:
		if pos+8 > end {
			return 0, 0, ErrMalformed
		}
		c.stream(pos, 8)
		c.charge(c.P.FixedLoadStore)
		v, err := c.Mem.Read64(pos)
		return v, 8, err
	default:
		v, vn, err := c.readVarintAt(pos, end)
		if err != nil {
			return 0, 0, err
		}
		switch f.Kind {
		case schema.KindSint32:
			c.charge(c.P.ZigZag)
			return uint64(int64(wire.DecodeZigZag32(v))), vn, nil
		case schema.KindSint64:
			c.charge(c.P.ZigZag)
			return uint64(wire.DecodeZigZag64(v)), vn, nil
		case schema.KindInt32, schema.KindEnum:
			return uint64(int64(int32(v))), vn, nil
		case schema.KindUint32:
			return uint64(uint32(v)), vn, nil
		case schema.KindBool:
			if v != 0 {
				return 1, vn, nil
			}
			return 0, vn, nil
		default:
			return v, vn, nil
		}
	}
}

// writeSlot stores bits into a slot of the given width, charging the
// store.
func (c *CPU) writeSlot(addr, slot, bits uint64) error {
	c.access(addr, slot)
	switch slot {
	case 1:
		return c.Mem.Write8(addr, byte(bits))
	case 4:
		return c.Mem.Write32(addr, uint32(bits))
	default:
		return c.Mem.Write64(addr, bits)
	}
}

// allocString allocates a payload of n bytes, charging string
// construction cost plus the first-touch cost of the fresh pages — the
// software-side expense the accelerator's pre-assigned arena avoids
// (§4.4.7) — and returns the address (0 for empty).
func (c *CPU) allocString(n uint64) (uint64, error) {
	if c.UseArena {
		c.charge(c.P.StringAlloc * c.P.ArenaDiscount)
	} else {
		c.charge(c.P.StringAlloc + c.P.FirstTouchPerB*float64(n))
	}
	if n == 0 {
		return 0, nil
	}
	return c.Heap.Alloc(n, 8)
}

// allocObject allocates and default-initializes an object of type sub,
// charging construction costs, and returns its address.
func (c *CPU) allocObject(sub *schema.Message) (uint64, error) {
	l := c.Reg.Layout(sub)
	alloc := c.P.ObjectAlloc
	if c.UseArena {
		alloc *= c.P.ArenaDiscount
	}
	c.charge(alloc + c.P.ObjectInitPer8B*float64(l.Size/8))
	addr, err := c.Heap.Alloc(l.Size, 8)
	if err != nil {
		return 0, err
	}
	buf, err := c.Mem.Slice(addr, l.Size)
	if err != nil {
		return 0, err
	}
	for i := range buf {
		buf[i] = 0
	}
	c.stream(addr, l.Size)
	if err := c.Mem.Write64(addr, c.Reg.TypeID(sub)); err != nil {
		return 0, err
	}
	return addr, nil
}

// appendRepeated returns the element address for the next element of a
// repeated field, growing the buffer as RepeatedField would.
func (c *CPU) appendRepeated(ctx *deserCtx, objAddr, slotAddr uint64, f *schema.Field) (uint64, error) {
	key := repKey{objAddr, f.Number}
	rs, ok := ctx.reps[key]
	es := layout.ElemSize(f)
	if !ok {
		// Adopt any existing buffer (merge-into semantics).
		c.access(slotAddr, 24)
		buf, err := c.Mem.Read64(slotAddr)
		if err != nil {
			return 0, err
		}
		ln, err := c.Mem.Read64(slotAddr + 8)
		if err != nil {
			return 0, err
		}
		cp, err := c.Mem.Read64(slotAddr + 16)
		if err != nil {
			return 0, err
		}
		rs = &repState{buf: buf, len: ln, cap: cp}
		ctx.reps[key] = rs
	}
	c.charge(c.P.RepeatedAppend)
	if rs.len == rs.cap {
		newCap := rs.cap * 2
		if newCap == 0 {
			newCap = initialRepeatedCap
		}
		newBuf, err := c.Heap.Alloc(newCap*es, 8)
		if err != nil {
			return 0, err
		}
		c.charge(c.P.ReallocSetup)
		if rs.len > 0 {
			// Copy existing elements.
			if err := c.copyBytes(newBuf, rs.buf, rs.len*es); err != nil {
				return 0, err
			}
		}
		rs.buf, rs.cap = newBuf, newCap
		if err := c.Mem.Write64(slotAddr, rs.buf); err != nil {
			return 0, err
		}
		if err := c.Mem.Write64(slotAddr+16, rs.cap); err != nil {
			return 0, err
		}
	}
	elemAddr := rs.buf + rs.len*es
	rs.len++
	c.access(slotAddr+8, 8)
	if err := c.Mem.Write64(slotAddr+8, rs.len); err != nil {
		return 0, err
	}
	return elemAddr, nil
}

func (c *CPU) parseField(ctx *deserCtx, f *schema.Field, fl *layout.FieldLayout, wt wire.Type, pos, end, objAddr uint64, depth int) (uint64, error) {
	slotAddr := objAddr + fl.Offset
	switch {
	case f.Kind == schema.KindMessage:
		n, vn, err := c.readVarintAt(pos, end)
		if err != nil {
			return 0, err
		}
		pos += vn
		if pos+n > end {
			return 0, ErrMalformed
		}
		var subAddr uint64
		if f.Repeated() {
			elemAddr, err := c.appendRepeated(ctx, objAddr, slotAddr, f)
			if err != nil {
				return 0, err
			}
			subAddr, err = c.allocObject(f.Message)
			if err != nil {
				return 0, err
			}
			if err := c.writeSlot(elemAddr, 8, subAddr); err != nil {
				return 0, err
			}
		} else {
			c.access(slotAddr, 8)
			subAddr, err = c.Mem.Read64(slotAddr)
			if err != nil {
				return 0, err
			}
			if subAddr == 0 {
				subAddr, err = c.allocObject(f.Message)
				if err != nil {
					return 0, err
				}
				if err := c.writeSlot(slotAddr, 8, subAddr); err != nil {
					return 0, err
				}
			}
		}
		if err := c.parseMessage(ctx, f.Message, pos, n, subAddr, depth-1); err != nil {
			return 0, err
		}
		return pos + n, nil

	case f.Kind.Class() == schema.ClassBytesLike:
		n, vn, err := c.readVarintAt(pos, end)
		if err != nil {
			return 0, err
		}
		pos += vn
		if pos+n > end {
			return 0, ErrMalformed
		}
		dataAddr, err := c.allocString(n)
		if err != nil {
			return 0, err
		}
		if n > 0 {
			if err := c.copyBytes(dataAddr, pos, n); err != nil {
				return 0, err
			}
		}
		headerAddr := slotAddr
		if f.Repeated() {
			headerAddr, err = c.appendRepeated(ctx, objAddr, slotAddr, f)
			if err != nil {
				return 0, err
			}
		}
		c.access(headerAddr, 16)
		if err := c.Mem.Write64(headerAddr, dataAddr); err != nil {
			return 0, err
		}
		if err := c.Mem.Write64(headerAddr+8, n); err != nil {
			return 0, err
		}
		return pos + n, nil

	case f.Repeated() && wt == wire.TypeBytes:
		// Packed run.
		n, vn, err := c.readVarintAt(pos, end)
		if err != nil {
			return 0, err
		}
		pos += vn
		if pos+n > end {
			return 0, ErrMalformed
		}
		runEnd := pos + n
		for pos < runEnd {
			bits, sn, err := c.decodeScalarAt(f, pos, runEnd)
			if err != nil {
				return 0, err
			}
			pos += sn
			elemAddr, err := c.appendRepeated(ctx, objAddr, slotAddr, f)
			if err != nil {
				return 0, err
			}
			if err := c.writeSlot(elemAddr, layout.ElemSize(f), bits); err != nil {
				return 0, err
			}
		}
		return pos, nil

	case f.Repeated():
		bits, sn, err := c.decodeScalarAt(f, pos, end)
		if err != nil {
			return 0, err
		}
		elemAddr, err := c.appendRepeated(ctx, objAddr, slotAddr, f)
		if err != nil {
			return 0, err
		}
		if err := c.writeSlot(elemAddr, layout.ElemSize(f), bits); err != nil {
			return 0, err
		}
		return pos + sn, nil

	default:
		bits, sn, err := c.decodeScalarAt(f, pos, end)
		if err != nil {
			return 0, err
		}
		if err := c.writeSlot(slotAddr, fl.Slot, bits); err != nil {
			return 0, err
		}
		return pos + sn, nil
	}
}

// AllocTopLevel allocates a zeroed top-level object for deserialization
// (user code allocates the top-level message; the library allocates the
// rest — §4.4).
func (c *CPU) AllocTopLevel(t *schema.Message) (uint64, error) {
	return c.allocObject(t)
}

// HeapAllocator exposes the CPU's heap for test setup.
func (c *CPU) HeapAllocator() *mem.Allocator { return c.Heap }
