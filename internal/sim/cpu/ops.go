package cpu

import (
	"protoacc/internal/accel/layout"
	"protoacc/internal/pb/schema"
)

// This file models the software versions of the other protobuf operators
// of Figure 2 — clear, copy (CopyFrom), and merge (MergeFrom) — which the
// paper's §7 proposes offloading next. They execute over simulated memory
// with the same cost table as parse/serialize, so the §7 bench can compare
// like against like.

// ClearObject resets all presence state of the object at objAddr. The
// C++ Clear walks present fields to release/reset them before clearing
// the bits, so the walk is charged first.
func (c *CPU) ClearObject(t *schema.Message, objAddr uint64) error {
	c.clears++
	l := c.Reg.Layout(t)
	c.charge(c.P.MessageSetup / 2)
	for _, fl := range l.Fields {
		present, err := c.hasbit(objAddr, l, fl.Field.Number)
		if err != nil {
			return err
		}
		if present {
			c.charge(c.P.FieldDispatch / 2)
		}
	}
	for w := 0; w < l.HasbitsWords; w++ {
		a := objAddr + layout.HasbitsOffset + uint64(w)*8
		c.access(a, 8)
		if err := c.Mem.Write64(a, 0); err != nil {
			return err
		}
	}
	return nil
}

// CopyObject deep-copies the object at srcObj into a freshly allocated
// object and returns its address (C++ CopyFrom onto a new message).
func (c *CPU) CopyObject(t *schema.Message, srcObj uint64) (uint64, error) {
	c.copies++
	dst, err := c.allocObject(t)
	if err != nil {
		return 0, err
	}
	return dst, c.MergeObjects(t, dst, srcObj)
}

// MergeObjects merges src into dst with proto2 semantics, charging
// per-field software costs.
func (c *CPU) MergeObjects(t *schema.Message, dstObj, srcObj uint64) error {
	c.merges++
	return c.mergeObjects(t, dstObj, srcObj, maxDepth)
}

func (c *CPU) mergeObjects(t *schema.Message, dstObj, srcObj uint64, depth int) error {
	if depth <= 0 {
		return ErrTooDeep
	}
	l := c.Reg.Layout(t)
	c.charge(c.P.MessageSetup)
	for w := 0; w < l.HasbitsWords; w++ {
		c.access(srcObj+layout.HasbitsOffset+uint64(w)*8, 8)
	}
	for _, fl := range l.Fields {
		f := fl.Field
		present, err := c.hasbit(srcObj, l, f.Number)
		if err != nil {
			return err
		}
		if !present {
			continue
		}
		c.charge(c.P.FieldDispatch)
		dstHad, err := c.hasbit(dstObj, l, f.Number)
		if err != nil {
			return err
		}
		// Set the destination hasbit.
		idx := uint64(f.Number - l.MinField)
		hbAddr := dstObj + layout.HasbitsOffset + (idx/64)*8
		c.access(hbAddr, 8)
		w, err := c.Mem.Read64(hbAddr)
		if err != nil {
			return err
		}
		if err := c.Mem.Write64(hbAddr, w|1<<(idx%64)); err != nil {
			return err
		}

		srcSlot := srcObj + fl.Offset
		dstSlot := dstObj + fl.Offset
		switch {
		case f.Repeated():
			if err := c.mergeRepeated(f, dstSlot, srcSlot, dstHad, depth); err != nil {
				return err
			}
		case f.Kind == schema.KindMessage:
			c.access(srcSlot, 8)
			srcPtr, err := c.Mem.Read64(srcSlot)
			if err != nil {
				return err
			}
			if srcPtr == 0 {
				continue
			}
			var dstPtr uint64
			if dstHad {
				c.access(dstSlot, 8)
				if dstPtr, err = c.Mem.Read64(dstSlot); err != nil {
					return err
				}
			}
			if dstPtr == 0 {
				if dstPtr, err = c.allocObject(f.Message); err != nil {
					return err
				}
				if err := c.writeSlot(dstSlot, 8, dstPtr); err != nil {
					return err
				}
			}
			if err := c.mergeObjects(f.Message, dstPtr, srcPtr, depth-1); err != nil {
				return err
			}
		case f.Kind.Class() == schema.ClassBytesLike:
			if err := c.copyStringHeader(srcSlot, dstSlot); err != nil {
				return err
			}
		default:
			bits, err := c.readSlot(srcSlot, fl.Slot, f.Kind)
			if err != nil {
				return err
			}
			if err := c.writeSlot(dstSlot, fl.Slot, bits); err != nil {
				return err
			}
		}
	}
	return nil
}

// copyStringHeader duplicates a string's payload and writes a fresh
// header at dstHdr.
func (c *CPU) copyStringHeader(srcHdr, dstHdr uint64) error {
	c.access(srcHdr, 16)
	ptr, err := c.Mem.Read64(srcHdr)
	if err != nil {
		return err
	}
	n, err := c.Mem.Read64(srcHdr + 8)
	if err != nil {
		return err
	}
	dataAddr, err := c.allocString(n)
	if err != nil {
		return err
	}
	if n > 0 {
		if err := c.copyBytes(dataAddr, ptr, n); err != nil {
			return err
		}
	}
	c.access(dstHdr, 16)
	if err := c.Mem.Write64(dstHdr, dataAddr); err != nil {
		return err
	}
	return c.Mem.Write64(dstHdr+8, n)
}

// mergeRepeated concatenates src's elements after dst's, reallocating the
// destination buffer.
func (c *CPU) mergeRepeated(f *schema.Field, dstSlot, srcSlot uint64, dstHad bool, depth int) error {
	c.access(srcSlot, 16)
	srcBuf, err := c.Mem.Read64(srcSlot)
	if err != nil {
		return err
	}
	srcN, err := c.Mem.Read64(srcSlot + 8)
	if err != nil {
		return err
	}
	if srcN == 0 {
		return nil
	}
	var dstBuf, dstN uint64
	if dstHad {
		c.access(dstSlot, 16)
		if dstBuf, err = c.Mem.Read64(dstSlot); err != nil {
			return err
		}
		if dstN, err = c.Mem.Read64(dstSlot + 8); err != nil {
			return err
		}
	}
	es := layout.ElemSize(f)
	c.charge(c.P.ReallocSetup)
	newBuf, err := c.Heap.Alloc((dstN+srcN)*es, 8)
	if err != nil {
		return err
	}
	if dstN > 0 {
		if err := c.copyBytes(newBuf, dstBuf, dstN*es); err != nil {
			return err
		}
	}
	if err := c.copyBytes(newBuf+dstN*es, srcBuf, srcN*es); err != nil {
		return err
	}
	c.charge(c.P.RepeatedAppend * float64(srcN))
	switch {
	case f.Kind == schema.KindMessage:
		for i := uint64(0); i < srcN; i++ {
			ptr, err := c.Mem.Read64(srcBuf + i*8)
			if err != nil {
				return err
			}
			sub, err := c.allocObject(f.Message)
			if err != nil {
				return err
			}
			if err := c.mergeObjects(f.Message, sub, ptr, depth-1); err != nil {
				return err
			}
			if err := c.Mem.Write64(newBuf+(dstN+i)*8, sub); err != nil {
				return err
			}
		}
	case f.Kind.Class() == schema.ClassBytesLike:
		for i := uint64(0); i < srcN; i++ {
			if err := c.copyStringHeader(srcBuf+i*es, newBuf+(dstN+i)*es); err != nil {
				return err
			}
		}
	}
	if err := c.Mem.Write64(dstSlot, newBuf); err != nil {
		return err
	}
	if err := c.Mem.Write64(dstSlot+8, dstN+srcN); err != nil {
		return err
	}
	return c.Mem.Write64(dstSlot+16, dstN+srcN)
}
