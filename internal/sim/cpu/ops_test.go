package cpu

import (
	"math/rand"
	"testing"

	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/pbtest"
	"protoacc/internal/pb/schema"
)

func opsType() *schema.Message {
	sub := mustMessage("OSub",
		&schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32},
		&schema.Field{Name: "s", Number: 2, Kind: schema.KindString})
	return mustMessage("O",
		&schema.Field{Name: "i", Number: 1, Kind: schema.KindInt64},
		&schema.Field{Name: "s", Number: 2, Kind: schema.KindString},
		&schema.Field{Name: "sub", Number: 3, Kind: schema.KindMessage, Message: sub},
		&schema.Field{Name: "r", Number: 4, Kind: schema.KindInt32, Label: schema.LabelRepeated},
		&schema.Field{Name: "rs", Number: 5, Kind: schema.KindString, Label: schema.LabelRepeated},
		&schema.Field{Name: "rm", Number: 6, Kind: schema.KindMessage, Message: sub, Label: schema.LabelRepeated},
	)
}

func opsPopulate(t *schema.Message) *dynamic.Message {
	m := dynamic.New(t)
	m.SetInt64(1, 7)
	m.SetString(2, "seven")
	m.MutableMessage(3).SetInt32(1, 3)
	m.AddScalarBits(4, 10)
	m.AddScalarBits(4, 20)
	m.AddString(5, "x")
	m.AddMessage(6).SetString(2, "el")
	return m
}

func TestCPUClearObject(t *testing.T) {
	typ := opsType()
	r := newRig(t, BOOMParams())
	msg := opsPopulate(typ)
	addr, err := r.mat.Write(msg)
	if err != nil {
		t.Fatal(err)
	}
	before := r.cpu.Cycles()
	if err := r.cpu.ClearObject(typ, addr); err != nil {
		t.Fatal(err)
	}
	if r.cpu.Cycles() <= before {
		t.Error("no cycles charged")
	}
	got, err := r.mat.Read(typ, addr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.PresentFieldNumbers()) != 0 {
		t.Error("clear incomplete")
	}
}

func TestCPUCopyObject(t *testing.T) {
	typ := opsType()
	r := newRig(t, BOOMParams())
	msg := opsPopulate(typ)
	addr, err := r.mat.Write(msg)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := r.cpu.CopyObject(typ, addr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.mat.Read(typ, cp)
	if err != nil {
		t.Fatal(err)
	}
	if !msg.Equal(got) {
		t.Error("copy differs")
	}
	// Deep copy: clearing the copy leaves the source intact.
	if err := r.cpu.ClearObject(typ, cp); err != nil {
		t.Fatal(err)
	}
	src, _ := r.mat.Read(typ, addr)
	if !msg.Equal(src) {
		t.Error("copy shares storage with source")
	}
}

func TestCPUMergeMatchesDynamic(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	for trial := 0; trial < 30; trial++ {
		typ := pbtest.RandomSchema(rng, pbtest.DefaultSchemaConfig())
		a := pbtest.RandomPopulated(rng, typ, pbtest.DefaultMessageConfig())
		b := pbtest.RandomPopulated(rng, typ, pbtest.DefaultMessageConfig())
		r := newRig(t, XeonParams())
		aAddr, err := r.mat.Write(a)
		if err != nil {
			t.Fatal(err)
		}
		bAddr, err := r.mat.Write(b)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.cpu.MergeObjects(typ, aAddr, bAddr); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := r.mat.Read(typ, aAddr)
		if err != nil {
			t.Fatal(err)
		}
		want := a.Clone()
		want.Merge(b)
		if !want.Equal(got) {
			t.Fatalf("trial %d: merge mismatch", trial)
		}
	}
}
