// Package mem implements the simulated physical memory of the SoC: a
// 64-bit byte-addressable space organized as named regions. The software
// CPU models and the accelerator models operate on the same Memory, so
// serialized buffers, C++-layout message objects, ADTs, and arenas all
// coexist exactly as they would in the unified memory space of the paper's
// SoC (Figure 8).
//
// Out-of-bounds accesses return errors (a simulated fault), never corrupt
// neighbouring regions, and never panic: the accelerator model surfaces
// them as device errors.
package mem

import (
	"errors"
	"fmt"
	"sort"
)

// PageSize is the VM page size assumed by the TLB model.
const PageSize = 4096

// Fault errors.
var (
	ErrUnmapped    = errors.New("mem: access to unmapped address")
	ErrSpansRegion = errors.New("mem: access spans region boundary")
	ErrOutOfSpace  = errors.New("mem: allocator out of space")
)

// Region is a contiguous mapped range of simulated memory.
//
// Each region tracks a dirty span [dirtyLo, dirtyHi): the tightest
// offset range covering every byte handed out through a mutable path
// (Slice and the Write* helpers). ResetDirty restores the region to its
// freshly-mapped all-zero state by zeroing only that span, so the cost
// of recycling a System is proportional to the bytes a run actually
// touched, not to region size. A span (rather than a prefix high-water
// mark) matters because the serializer's memwriter emits its output
// high-to-low from the top of a large arena (§4.5.1): a prefix mark
// would condemn the whole region on the first write.
type Region struct {
	Name    string
	Base    uint64
	data    []byte
	dirtyLo uint64 // start offset of the lowest possibly-written byte
	dirtyHi uint64 // end offset of the highest possibly-written byte
}

// Size returns the region's size in bytes.
func (r *Region) Size() uint64 { return uint64(len(r.data)) }

// End returns the first address past the region.
func (r *Region) End() uint64 { return r.Base + r.Size() }

// Contains reports whether [addr, addr+n) lies within the region.
func (r *Region) Contains(addr, n uint64) bool {
	return addr >= r.Base && n <= r.Size() && addr-r.Base <= r.Size()-n
}

// DirtyBytes returns the size of the dirty span: the tightest range that
// may differ from the region's initial all-zero state.
func (r *Region) DirtyBytes() uint64 { return r.dirtyHi - r.dirtyLo }

// DirtySpan returns the dirty span as region-relative offsets [lo, hi).
// A clean region returns (0, 0).
func (r *Region) DirtySpan() (lo, hi uint64) { return r.dirtyLo, r.dirtyHi }

// markDirty widens the dirty span to cover [off, off+n).
func (r *Region) markDirty(off, n uint64) {
	if r.dirtyHi == r.dirtyLo { // clean: adopt the write as the span
		r.dirtyLo, r.dirtyHi = off, off+n
		return
	}
	if off < r.dirtyLo {
		r.dirtyLo = off
	}
	if off+n > r.dirtyHi {
		r.dirtyHi = off + n
	}
}

// ResetDirty restores the region to its freshly-mapped all-zero state,
// zeroing only the dirty span. Slices previously obtained via Slice keep
// aliasing the same backing bytes and observe the zeroing.
func (r *Region) ResetDirty() {
	b := r.data[r.dirtyLo:r.dirtyHi]
	for i := range b {
		b[i] = 0
	}
	r.dirtyLo, r.dirtyHi = 0, 0
}

// Memory is the simulated physical memory.
type Memory struct {
	regions []*Region // sorted by Base
	next    uint64    // next allocation base
}

// baseAddr is where the first region is placed; low addresses stay
// unmapped so nil-pointer dereferences in the models fault.
const baseAddr = 0x10000

// guardGap is left unmapped between regions to catch overruns.
const guardGap = PageSize

// New creates an empty memory.
func New() *Memory {
	return &Memory{next: baseAddr}
}

// Map allocates a new zeroed region of the given size and returns it.
// Regions are page-aligned with an unmapped guard page between them.
func (m *Memory) Map(name string, size uint64) *Region {
	if size == 0 {
		size = 1 // keep every region addressable
	}
	r := &Region{Name: name, Base: m.next, data: make([]byte, size)}
	m.regions = append(m.regions, r)
	m.next = (r.End() + guardGap + PageSize - 1) &^ (PageSize - 1)
	return r
}

// MappedBytes returns the total mapped size.
func (m *Memory) MappedBytes() uint64 {
	var n uint64
	for _, r := range m.regions {
		n += r.Size()
	}
	return n
}

// find returns the region containing [addr, addr+n), or an error.
func (m *Memory) find(addr, n uint64) (*Region, error) {
	// Binary search over sorted region bases.
	i := sort.Search(len(m.regions), func(i int) bool { return m.regions[i].End() > addr })
	if i == len(m.regions) || addr < m.regions[i].Base {
		return nil, fmt.Errorf("%w: 0x%x (+%d)", ErrUnmapped, addr, n)
	}
	r := m.regions[i]
	if !r.Contains(addr, n) {
		return nil, fmt.Errorf("%w: 0x%x (+%d) in %s", ErrSpansRegion, addr, n, r.Name)
	}
	return r, nil
}

// Slice returns a slice aliasing simulated memory at [addr, addr+n). The
// fast path for streaming units (memloader, memwriter, memcpy).
// Zero-length slices succeed at any address (including one past a region's
// end, where an empty high-to-low output lands). The caller may write
// through the slice, so the region's dirty span is widened; read-only
// paths should use View instead.
func (m *Memory) Slice(addr, n uint64) ([]byte, error) {
	if n == 0 {
		return nil, nil
	}
	r, err := m.find(addr, n)
	if err != nil {
		return nil, err
	}
	off := addr - r.Base
	r.markDirty(off, n)
	return r.data[off : off+n : off+n], nil
}

// View returns a read-only alias of [addr, addr+n) without advancing the
// dirty mark: the zero-copy fetch path of the memloader/memwriter models.
// Callers must not write through the returned slice.
func (m *Memory) View(addr, n uint64) ([]byte, error) {
	if n == 0 {
		return nil, nil
	}
	r, err := m.find(addr, n)
	if err != nil {
		return nil, err
	}
	off := addr - r.Base
	return r.data[off : off+n : off+n], nil
}

// ResetDirty restores every region to its freshly-mapped all-zero state,
// zeroing only dirty spans (see Region.ResetDirty).
func (m *Memory) ResetDirty() {
	for _, r := range m.regions {
		r.ResetDirty()
	}
}

// ReadBytes copies len(dst) bytes from addr into dst.
func (m *Memory) ReadBytes(addr uint64, dst []byte) error {
	src, err := m.View(addr, uint64(len(dst)))
	if err != nil {
		return err
	}
	copy(dst, src)
	return nil
}

// WriteBytes copies src into simulated memory at addr.
func (m *Memory) WriteBytes(addr uint64, src []byte) error {
	dst, err := m.Slice(addr, uint64(len(src)))
	if err != nil {
		return err
	}
	copy(dst, src)
	return nil
}

// Read8 reads one byte.
func (m *Memory) Read8(addr uint64) (byte, error) {
	s, err := m.View(addr, 1)
	if err != nil {
		return 0, err
	}
	return s[0], nil
}

// Write8 writes one byte.
func (m *Memory) Write8(addr uint64, v byte) error {
	s, err := m.Slice(addr, 1)
	if err != nil {
		return err
	}
	s[0] = v
	return nil
}

// Read32 reads a little-endian 32-bit value.
func (m *Memory) Read32(addr uint64) (uint32, error) {
	s, err := m.View(addr, 4)
	if err != nil {
		return 0, err
	}
	return uint32(s[0]) | uint32(s[1])<<8 | uint32(s[2])<<16 | uint32(s[3])<<24, nil
}

// Write32 writes a little-endian 32-bit value.
func (m *Memory) Write32(addr uint64, v uint32) error {
	s, err := m.Slice(addr, 4)
	if err != nil {
		return err
	}
	s[0], s[1], s[2], s[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return nil
}

// Read64 reads a little-endian 64-bit value.
func (m *Memory) Read64(addr uint64) (uint64, error) {
	s, err := m.View(addr, 8)
	if err != nil {
		return 0, err
	}
	lo := uint64(s[0]) | uint64(s[1])<<8 | uint64(s[2])<<16 | uint64(s[3])<<24
	hi := uint64(s[4]) | uint64(s[5])<<8 | uint64(s[6])<<16 | uint64(s[7])<<24
	return lo | hi<<32, nil
}

// Write64 writes a little-endian 64-bit value.
func (m *Memory) Write64(addr uint64, v uint64) error {
	s, err := m.Slice(addr, 8)
	if err != nil {
		return err
	}
	for i := 0; i < 8; i++ {
		s[i] = byte(v >> (8 * i))
	}
	return nil
}

// Allocator is a bump allocator over a region: the mechanism behind both
// accelerator arenas (§4.3) and the simulated program heap. Allocation is
// a pointer increment, exactly as the paper describes.
type Allocator struct {
	region *Region
	off    uint64
	allocs int64
}

// NewAllocator creates a bump allocator over r.
func NewAllocator(r *Region) *Allocator {
	return &Allocator{region: r}
}

// Alloc reserves n bytes aligned to align (a power of two; 0/1 mean no
// alignment) and returns the address.
func (a *Allocator) Alloc(n, align uint64) (uint64, error) {
	off := a.off
	if align > 1 {
		off = (off + align - 1) &^ (align - 1)
	}
	if off+n > a.region.Size() || off+n < off {
		return 0, fmt.Errorf("%w: %s (%d of %d used)", ErrOutOfSpace, a.region.Name, a.off, a.region.Size())
	}
	a.off = off + n
	a.allocs++
	return a.region.Base + off, nil
}

// Used returns the bytes consumed so far.
func (a *Allocator) Used() uint64 { return a.off }

// Mark captures an allocator position for transactional rollback
// (Truncate). The zero Mark refers to an empty allocator.
type Mark struct {
	off    uint64
	allocs int64
}

// Mark returns the allocator's current position.
func (a *Allocator) Mark() Mark { return Mark{off: a.off, allocs: a.allocs} }

// Truncate rewinds the allocator to a previously captured Mark and
// scrubs (zeroes) the released span, restoring the backing memory to its
// never-allocated all-zero state. This is the abort path of a
// transactional operation: after Truncate, no partially-written object
// allocated past the mark is observable. The mark must come from this
// allocator and must not be newer than the current position.
func (a *Allocator) Truncate(m Mark) {
	if m.off >= a.off {
		return
	}
	b := a.region.data[m.off:a.off]
	for i := range b {
		b[i] = 0
	}
	a.off = m.off
	a.allocs = m.allocs
}

// Allocs returns the number of allocations performed.
func (a *Allocator) Allocs() int64 { return a.allocs }

// Remaining returns the bytes still available.
func (a *Allocator) Remaining() uint64 { return a.region.Size() - a.off }

// Reset rewinds the allocator, freeing everything at once (arena reset).
func (a *Allocator) Reset() {
	a.off = 0
	a.allocs = 0
}

// Region returns the backing region.
func (a *Allocator) Region() *Region { return a.region }
