package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestMapAndAccess(t *testing.T) {
	m := New()
	r := m.Map("heap", 4096)
	if r.Base == 0 {
		t.Error("region should not start at 0")
	}
	if err := m.Write64(r.Base, 0x0102030405060708); err != nil {
		t.Fatal(err)
	}
	v, err := m.Read64(r.Base)
	if err != nil || v != 0x0102030405060708 {
		t.Fatalf("Read64 = %x, %v", v, err)
	}
	b, err := m.Read8(r.Base)
	if err != nil || b != 0x08 {
		t.Fatalf("Read8 = %x (little-endian expected)", b)
	}
	if err := m.Write32(r.Base+8, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	v32, err := m.Read32(r.Base + 8)
	if err != nil || v32 != 0xdeadbeef {
		t.Fatalf("Read32 = %x", v32)
	}
}

func TestUnmappedFaults(t *testing.T) {
	m := New()
	r := m.Map("a", 100)
	cases := []uint64{0, 8, r.Base - 1, r.End(), r.End() + 100}
	for _, addr := range cases {
		if _, err := m.Read8(addr); !errors.Is(err, ErrUnmapped) && !errors.Is(err, ErrSpansRegion) {
			t.Errorf("Read8(0x%x) err = %v, want fault", addr, err)
		}
	}
	// Access straddling the region end.
	if _, err := m.Read64(r.End() - 4); err == nil {
		t.Error("straddling read should fault")
	}
}

func TestGuardGapBetweenRegions(t *testing.T) {
	m := New()
	a := m.Map("a", 100)
	b := m.Map("b", 100)
	if b.Base < a.End()+guardGap {
		t.Errorf("no guard gap: a ends 0x%x, b starts 0x%x", a.End(), b.Base)
	}
	// Writing into the gap faults.
	if err := m.Write8(a.End()+1, 1); err == nil {
		t.Error("guard gap write should fault")
	}
}

func TestReadWriteBytes(t *testing.T) {
	m := New()
	r := m.Map("buf", 1024)
	src := []byte("the quick brown fox")
	if err := m.WriteBytes(r.Base+10, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(src))
	if err := m.ReadBytes(r.Base+10, dst); err != nil {
		t.Fatal(err)
	}
	if string(dst) != string(src) {
		t.Errorf("round trip = %q", dst)
	}
}

func TestSliceAliases(t *testing.T) {
	m := New()
	r := m.Map("buf", 64)
	s, err := m.Slice(r.Base, 8)
	if err != nil {
		t.Fatal(err)
	}
	s[0] = 0x7f
	v, _ := m.Read8(r.Base)
	if v != 0x7f {
		t.Error("Slice should alias memory")
	}
	if cap(s) != 8 {
		t.Error("Slice cap should be clamped")
	}
}

func TestZeroSizeRegionAddressable(t *testing.T) {
	m := New()
	r := m.Map("z", 0)
	if r.Size() != 1 {
		t.Errorf("zero-size region size = %d", r.Size())
	}
}

func TestRead64Write64RoundTrip(t *testing.T) {
	m := New()
	r := m.Map("x", 16)
	f := func(v uint64) bool {
		if err := m.Write64(r.Base, v); err != nil {
			return false
		}
		got, err := m.Read64(r.Base)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllocator(t *testing.T) {
	m := New()
	r := m.Map("arena", 256)
	a := NewAllocator(r)
	p1, err := a.Alloc(10, 8)
	if err != nil || p1 != r.Base {
		t.Fatalf("first alloc = 0x%x, %v", p1, err)
	}
	p2, err := a.Alloc(8, 8)
	if err != nil || p2 != r.Base+16 { // 10 rounded up to 16
		t.Fatalf("second alloc = 0x%x (want +16)", p2)
	}
	p3, err := a.Alloc(1, 0)
	if err != nil || p3 != r.Base+24 {
		t.Fatalf("unaligned alloc = 0x%x", p3)
	}
	if a.Allocs() != 3 || a.Used() != 25 {
		t.Errorf("allocs=%d used=%d", a.Allocs(), a.Used())
	}
	if _, err := a.Alloc(1000, 8); !errors.Is(err, ErrOutOfSpace) {
		t.Errorf("overflow err = %v", err)
	}
	a.Reset()
	if a.Used() != 0 || a.Remaining() != 256 {
		t.Error("Reset incomplete")
	}
	p4, _ := a.Alloc(4, 4)
	if p4 != r.Base {
		t.Error("post-reset alloc should restart at base")
	}
}

func TestAllocatorExactFit(t *testing.T) {
	m := New()
	r := m.Map("arena", 64)
	a := NewAllocator(r)
	if _, err := a.Alloc(64, 1); err != nil {
		t.Fatalf("exact fit should succeed: %v", err)
	}
	if _, err := a.Alloc(1, 1); err == nil {
		t.Error("full arena should fail")
	}
}

func TestMappedBytes(t *testing.T) {
	m := New()
	m.Map("a", 100)
	m.Map("b", 200)
	if m.MappedBytes() != 300 {
		t.Errorf("MappedBytes = %d", m.MappedBytes())
	}
}

func TestDirtySpanTracking(t *testing.T) {
	m := New()
	r := m.Map("buf", 4096)
	if r.DirtyBytes() != 0 {
		t.Fatalf("fresh region dirty = %d", r.DirtyBytes())
	}
	// The first write seeds the span with exactly the accessed range.
	if err := m.Write64(r.Base+100, 1); err != nil {
		t.Fatal(err)
	}
	if lo, hi := r.DirtySpan(); lo != 100 || hi != 108 {
		t.Errorf("span after Write64@100 = [%d, %d), want [100, 108)", lo, hi)
	}
	if r.DirtyBytes() != 8 {
		t.Errorf("dirty after Write64@100 = %d, want 8", r.DirtyBytes())
	}
	// A write below the span extends it downward.
	if err := m.Write8(r.Base+10, 2); err != nil {
		t.Fatal(err)
	}
	if lo, hi := r.DirtySpan(); lo != 10 || hi != 108 {
		t.Errorf("span after low write = [%d, %d), want [10, 108)", lo, hi)
	}
	// A write above the span extends it upward.
	if err := m.WriteBytes(r.Base+200, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if lo, hi := r.DirtySpan(); lo != 10 || hi != 203 {
		t.Errorf("span after high write = [%d, %d), want [10, 203)", lo, hi)
	}
	// Reads do not widen the span.
	if _, err := m.Read64(r.Base + 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := m.View(r.Base+2000, 64); err != nil {
		t.Fatal(err)
	}
	if r.DirtyBytes() != 193 {
		t.Errorf("dirty after reads = %d, want 193", r.DirtyBytes())
	}
	// Slice conservatively dirties its whole range (callers may write).
	if _, err := m.Slice(r.Base+300, 8); err != nil {
		t.Fatal(err)
	}
	if lo, hi := r.DirtySpan(); lo != 10 || hi != 308 {
		t.Errorf("span after Slice = [%d, %d), want [10, 308)", lo, hi)
	}
}

func TestDirtySpanHighToLowWrites(t *testing.T) {
	// The serializer writes its output arena from the top end downward; a
	// span must stay proportional to the touched bytes, not region size.
	m := New()
	r := m.Map("out", 1<<20)
	end := r.End()
	if err := m.WriteBytes(end-64, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteBytes(end-128, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if r.DirtyBytes() != 128 {
		t.Errorf("dirty after two top-end writes = %d, want 128", r.DirtyBytes())
	}
	if lo, hi := r.DirtySpan(); lo != r.Size()-128 || hi != r.Size() {
		t.Errorf("span = [%d, %d), want [%d, %d)", lo, hi, r.Size()-128, r.Size())
	}
	r.ResetDirty()
	buf := make([]byte, 128)
	if err := m.ReadBytes(end-128, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %#x after reset, want 0", i, b)
		}
	}
}

func TestResetDirtyZeroesOnlyTouchedSpan(t *testing.T) {
	m := New()
	r := m.Map("buf", 4096)
	if err := m.WriteBytes(r.Base+8, []byte{0xaa, 0xbb, 0xcc}); err != nil {
		t.Fatal(err)
	}
	r.ResetDirty()
	if r.DirtyBytes() != 0 {
		t.Errorf("dirty after reset = %d", r.DirtyBytes())
	}
	buf := make([]byte, 16)
	if err := m.ReadBytes(r.Base, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Errorf("byte %d = %#x after reset, want 0", i, b)
		}
	}
	// The region behaves exactly like a fresh one afterwards.
	if err := m.Write8(r.Base, 1); err != nil {
		t.Fatal(err)
	}
	if r.DirtyBytes() != 1 {
		t.Errorf("dirty after post-reset write = %d, want 1", r.DirtyBytes())
	}
}

func TestSliceAliasingAcrossResetDirty(t *testing.T) {
	m := New()
	r := m.Map("buf", 64)
	s, err := m.Slice(r.Base, 8)
	if err != nil {
		t.Fatal(err)
	}
	s[3] = 0x7f
	m.ResetDirty()
	// Old slices keep aliasing the backing bytes and observe the zeroing.
	if s[3] != 0 {
		t.Errorf("aliased slice after ResetDirty = %#x, want 0", s[3])
	}
	// Writes through a stale alias still land in the region (the mark is
	// conservative, not a correctness guard), and a fresh Slice re-dirties.
	s2, err := m.Slice(r.Base, 8)
	if err != nil {
		t.Fatal(err)
	}
	s2[0] = 0x11
	if v, _ := m.Read8(r.Base); v != 0x11 {
		t.Error("fresh slice should alias memory after reset")
	}
}

func TestZeroLengthAccessesAtRegionBoundaries(t *testing.T) {
	m := New()
	r := m.Map("buf", 64)
	// Zero-length Slice/View succeed anywhere — including one past the
	// region end and in unmapped space — and never advance the mark.
	for _, addr := range []uint64{r.Base, r.End(), r.End() + 5000, 0} {
		if s, err := m.Slice(addr, 0); err != nil || s != nil {
			t.Errorf("Slice(0x%x, 0) = %v, %v", addr, s, err)
		}
		if s, err := m.View(addr, 0); err != nil || s != nil {
			t.Errorf("View(0x%x, 0) = %v, %v", addr, s, err)
		}
	}
	if r.DirtyBytes() != 0 {
		t.Errorf("zero-length accesses dirtied %d bytes", r.DirtyBytes())
	}
	// A full-region access marks everything; reset restores cleanliness.
	if _, err := m.Slice(r.Base, r.Size()); err != nil {
		t.Fatal(err)
	}
	if r.DirtyBytes() != r.Size() {
		t.Errorf("full-region Slice dirty = %d, want %d", r.DirtyBytes(), r.Size())
	}
	m.ResetDirty()
	if r.DirtyBytes() != 0 {
		t.Error("ResetDirty should clear a fully-dirty region")
	}
}

func TestViewRejectsOutOfBounds(t *testing.T) {
	m := New()
	r := m.Map("buf", 64)
	if _, err := m.View(r.End()-4, 8); err == nil {
		t.Error("View straddling the region end should fault")
	}
	if _, err := m.View(r.End()+guardGap, 1); !errors.Is(err, ErrUnmapped) {
		t.Error("View of unmapped space should fault")
	}
}

func BenchmarkRead64(b *testing.B) {
	m := New()
	r := m.Map("x", 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Read64(r.Base + uint64(i%512)*8); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAllocatorTruncateScrubs(t *testing.T) {
	m := New()
	r := m.Map("arena", 256)
	a := NewAllocator(r)
	p1, err := a.Alloc(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteBytes(p1, []byte("committed-bytes!")); err != nil {
		t.Fatal(err)
	}
	mark := a.Mark()

	p2, err := a.Alloc(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteBytes(p2, []byte("partial object that must vanish!")); err != nil {
		t.Fatal(err)
	}
	a.Truncate(mark)

	if a.Used() != 16 || a.Allocs() != 1 {
		t.Fatalf("after truncate: used=%d allocs=%d, want 16/1", a.Used(), a.Allocs())
	}
	got := make([]byte, 16)
	if err := m.ReadBytes(p1, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "committed-bytes!" {
		t.Fatalf("committed span clobbered: %q", got)
	}
	scrub := make([]byte, 32)
	if err := m.ReadBytes(p2, scrub); err != nil {
		t.Fatal(err)
	}
	for i, b := range scrub {
		if b != 0 {
			t.Fatalf("released byte %d not scrubbed: %#x", i, b)
		}
	}
	// Re-allocation after rollback lands at the same address as if the
	// aborted allocation never happened.
	p3, err := a.Alloc(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p2 {
		t.Fatalf("post-rollback alloc at 0x%x, want 0x%x", p3, p2)
	}
}

func TestAllocatorTruncateNoopOnCurrentOrNewerMark(t *testing.T) {
	m := New()
	a := NewAllocator(m.Map("arena", 64))
	if _, err := a.Alloc(8, 8); err != nil {
		t.Fatal(err)
	}
	mark := a.Mark()
	a.Truncate(mark) // mark == current: no-op
	if a.Used() != 8 {
		t.Fatalf("truncate to current mark moved the allocator: used=%d", a.Used())
	}
	a.Truncate(Mark{}) // rollback to empty
	if a.Used() != 0 || a.Allocs() != 0 {
		t.Fatalf("truncate to zero mark: used=%d allocs=%d", a.Used(), a.Allocs())
	}
}
