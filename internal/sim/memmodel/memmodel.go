// Package memmodel implements the timing model of the SoC memory system:
// per-port L1 caches and TLBs in front of a shared L2, LLC, and DRAM,
// mirroring Figure 8 of the paper where the application core and the
// accelerator share the L2/LLC and each maintain their own L1/TLBs.
//
// The model is a functional set-associative cache simulator: every access
// walks the hierarchy, updates LRU state, and returns the latency in
// cycles of the furthest level reached. It models locality (the dominant
// first-order effect for serialization workloads, which stream buffers and
// chase object pointers) without modelling coherence traffic or MLP —
// overlap of outstanding misses is approximated by the Port's
// StreamAccess, used by the accelerator's streaming units which the paper
// describes as supporting a configurable number of outstanding requests.
package memmodel

import "fmt"

// LineSize is the cache line size in bytes.
const LineSize = 64

// PageSize must match mem.PageSize; kept local to avoid a dependency.
const PageSize = 4096

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name       string
	SizeBytes  int
	Assoc      int
	HitLatency uint64 // cycles charged when the access hits at this level
}

// Config describes the memory system.
type Config struct {
	L1          CacheConfig
	L2          CacheConfig
	LLC         CacheConfig
	DRAMLatency uint64 // cycles for an access that misses everywhere
	TLBEntries  int
	PTWLatency  uint64 // page-table walk cost on TLB miss
	// StreamOverlap divides the latency of streaming (prefetchable)
	// misses, modelling multiple outstanding requests; 1 = no overlap.
	StreamOverlap uint64
}

// DefaultConfig returns parameters resembling the paper's SoC: 32 KiB L1s,
// a 512 KiB shared L2, a 4 MiB LLC (FireSim runs used a 32 MiB LLC model;
// we use a smaller one so benchmarks exhibit capacity behaviour at
// simulation-friendly sizes), and ~100 ns DRAM at 2 GHz.
func DefaultConfig() Config {
	return Config{
		L1:            CacheConfig{Name: "L1", SizeBytes: 32 << 10, Assoc: 8, HitLatency: 2},
		L2:            CacheConfig{Name: "L2", SizeBytes: 512 << 10, Assoc: 8, HitLatency: 14},
		LLC:           CacheConfig{Name: "LLC", SizeBytes: 4 << 20, Assoc: 16, HitLatency: 38},
		DRAMLatency:   200,
		TLBEntries:    64,
		PTWLatency:    80,
		StreamOverlap: 4,
	}
}

// LevelStats counts accesses at one cache level.
type LevelStats struct {
	Hits   uint64
	Misses uint64
}

// HitRate returns hits/(hits+misses), or 0 with no accesses.
func (s LevelStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// cache is one set-associative level with LRU replacement.
type cache struct {
	cfg   CacheConfig
	sets  [][]uint64 // per-set LRU-ordered line tags (front = MRU)
	mask  uint64
	next  *cache // nil = DRAM behind this level
	dram  uint64
	stats LevelStats
}

func newCache(cfg CacheConfig, next *cache, dram uint64) *cache {
	nsets := cfg.SizeBytes / (LineSize * cfg.Assoc)
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("memmodel: %s: set count %d must be a positive power of two", cfg.Name, nsets))
	}
	return &cache{
		cfg:  cfg,
		sets: make([][]uint64, nsets),
		mask: uint64(nsets - 1),
		next: next,
		dram: dram,
	}
}

// access looks up one line (addr already line-aligned) and returns the
// latency of the furthest level reached.
func (c *cache) access(line uint64) uint64 {
	idx := (line / LineSize) & c.mask
	set := c.sets[idx]
	for i, tag := range set {
		if tag == line {
			// Hit: move to front.
			copy(set[1:i+1], set[:i])
			set[0] = line
			c.stats.Hits++
			return c.cfg.HitLatency
		}
	}
	c.stats.Misses++
	var below uint64
	if c.next != nil {
		below = c.next.access(line)
	} else {
		below = c.dram
	}
	// Fill with LRU eviction.
	if len(set) < c.cfg.Assoc {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = line
	c.sets[idx] = set
	return c.cfg.HitLatency + below
}

// reset empties the cache and zeroes its counters, keeping the backing
// set arrays so a recycled System allocates nothing.
func (c *cache) reset() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
	c.stats = LevelStats{}
}

// tlb is a fully-associative LRU TLB.
type tlb struct {
	entries []uint64
	max     int
	ptw     uint64
	stats   LevelStats
}

func (t *tlb) access(page uint64) uint64 {
	for i, p := range t.entries {
		if p == page {
			copy(t.entries[1:i+1], t.entries[:i])
			t.entries[0] = page
			t.stats.Hits++
			return 0
		}
	}
	t.stats.Misses++
	if len(t.entries) < t.max {
		t.entries = append(t.entries, 0)
	}
	copy(t.entries[1:], t.entries)
	t.entries[0] = page
	return t.ptw
}

// reset empties the TLB and zeroes its counters.
func (t *tlb) reset() {
	t.entries = t.entries[:0]
	t.stats = LevelStats{}
}

// System is the shared part of the memory hierarchy (L2, LLC, DRAM).
type System struct {
	cfg   Config
	l2    *cache
	llc   *cache
	ports []*Port
}

// NewSystem builds the shared hierarchy from cfg.
func NewSystem(cfg Config) *System {
	if cfg.StreamOverlap == 0 {
		cfg.StreamOverlap = 1
	}
	llc := newCache(cfg.LLC, nil, cfg.DRAMLatency)
	l2 := newCache(cfg.L2, llc, 0)
	return &System{cfg: cfg, l2: l2, llc: llc}
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Reset restores the hierarchy to its post-construction state: every
// level (the shared L2/LLC and each port's private L1 and TLB) is emptied
// and all hit/miss counters are zeroed. A reset hierarchy is
// indistinguishable, access for access, from a freshly built one — the
// property the System pool's bitwise-determinism contract relies on.
func (s *System) Reset() {
	s.l2.reset()
	s.llc.reset()
	for _, p := range s.ports {
		p.Reset()
	}
}

// L2Stats returns the shared L2's counters.
func (s *System) L2Stats() LevelStats { return s.l2.stats }

// LLCStats returns the shared LLC's counters.
func (s *System) LLCStats() LevelStats { return s.llc.stats }

// DRAMAccesses returns how many accesses reached DRAM (LLC misses).
func (s *System) DRAMAccesses() uint64 { return s.llc.stats.Misses }

// PortNames returns the names of every port, in creation order.
func (s *System) PortNames() []string {
	out := make([]string, len(s.ports))
	for i, p := range s.ports {
		out[i] = p.name
	}
	return out
}

// L1Stats returns the named port's private L1 counters; ok is false when
// no such port exists.
func (s *System) L1Stats(port string) (LevelStats, bool) {
	for _, p := range s.ports {
		if p.name == port {
			return p.l1.stats, true
		}
	}
	return LevelStats{}, false
}

// TLBStats returns the named port's TLB counters; ok is false when no
// such port exists.
func (s *System) TLBStats(port string) (LevelStats, bool) {
	for _, p := range s.ports {
		if p.name == port {
			return p.tlb.stats, true
		}
	}
	return LevelStats{}, false
}

// CollectTelemetry implements the telemetry Collector contract: shared
// levels first (l2, llc, dram), then each port's private L1 and TLB in
// creation order, named "l1/<port>/..." and "tlb/<port>/...".
func (s *System) CollectTelemetry(emit func(name string, value float64)) {
	emit("l2/hits", float64(s.l2.stats.Hits))
	emit("l2/misses", float64(s.l2.stats.Misses))
	emit("llc/hits", float64(s.llc.stats.Hits))
	emit("llc/misses", float64(s.llc.stats.Misses))
	emit("dram/accesses", float64(s.llc.stats.Misses))
	for _, p := range s.ports {
		emit("l1/"+p.name+"/hits", float64(p.l1.stats.Hits))
		emit("l1/"+p.name+"/misses", float64(p.l1.stats.Misses))
		emit("tlb/"+p.name+"/hits", float64(p.tlb.stats.Hits))
		emit("tlb/"+p.name+"/misses", float64(p.tlb.stats.Misses))
	}
}

// Port is one agent's view of the memory system: a private L1 and TLB in
// front of the shared levels. The BOOM core and the accelerator each own
// a Port.
type Port struct {
	name    string
	sys     *System
	l1      *cache
	tlb     *tlb
	overlap uint64 // stream overlap override; 0 = system default
}

// SetStreamOverlap overrides the streaming overlap factor for this port,
// modelling an agent with its own outstanding-request capacity (the
// accelerator's memory interface wrappers support a configurable number
// of outstanding requests, §4.1).
func (p *Port) SetStreamOverlap(n uint64) { p.overlap = n }

// NewPort creates a port with its own L1 and TLB.
func (s *System) NewPort(name string) *Port {
	p := &Port{
		name: name,
		sys:  s,
		l1:   newCache(s.cfg.L1, s.l2, 0),
		tlb:  &tlb{max: s.cfg.TLBEntries, ptw: s.cfg.PTWLatency},
	}
	s.ports = append(s.ports, p)
	return p
}

// Reset empties the port's private L1 and TLB and zeroes their counters.
func (p *Port) Reset() {
	p.l1.reset()
	p.tlb.reset()
}

// Access performs a demand access of size bytes at addr and returns its
// latency in cycles. Accesses spanning cache lines touch each line.
func (p *Port) Access(addr, size uint64) uint64 {
	if size == 0 {
		return 0
	}
	var cycles uint64
	first := addr &^ (LineSize - 1)
	last := (addr + size - 1) &^ (LineSize - 1)
	for line := first; ; line += LineSize {
		cycles += p.tlb.access(line / PageSize)
		cycles += p.l1.access(line)
		if line == last {
			break
		}
	}
	return cycles
}

// StreamAccess performs a sequential/streaming access: miss latencies
// beyond the first line are divided by the configured overlap factor,
// modelling the multiple outstanding requests of the accelerator's
// memloader/memwriter (§4.1) and the stride prefetchers of the CPUs.
func (p *Port) StreamAccess(addr, size uint64) uint64 {
	if size == 0 {
		return 0
	}
	overlap := p.sys.cfg.StreamOverlap
	if p.overlap != 0 {
		overlap = p.overlap
	}
	var cycles uint64
	first := addr &^ (LineSize - 1)
	last := (addr + size - 1) &^ (LineSize - 1)
	n := uint64(0)
	for line := first; ; line += LineSize {
		c := p.tlb.access(line/PageSize) + p.l1.access(line)
		if n == 0 {
			cycles += c
		} else {
			cycles += (c + overlap - 1) / overlap
		}
		n++
		if line == last {
			break
		}
	}
	return cycles
}

// L1Stats returns the port's private L1 counters.
func (p *Port) L1Stats() LevelStats { return p.l1.stats }

// TLBStats returns the port's TLB counters.
func (p *Port) TLBStats() LevelStats { return p.tlb.stats }

// Name returns the port's name.
func (p *Port) Name() string { return p.name }
