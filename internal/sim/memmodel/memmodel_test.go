package memmodel

import "testing"

func testConfig() Config {
	cfg := DefaultConfig()
	// Small caches so capacity behaviour is easy to trigger.
	cfg.L1 = CacheConfig{Name: "L1", SizeBytes: 1 << 10, Assoc: 2, HitLatency: 2}
	cfg.L2 = CacheConfig{Name: "L2", SizeBytes: 4 << 10, Assoc: 4, HitLatency: 10}
	cfg.LLC = CacheConfig{Name: "LLC", SizeBytes: 16 << 10, Assoc: 4, HitLatency: 30}
	cfg.DRAMLatency = 100
	return cfg
}

func TestColdMissThenHit(t *testing.T) {
	sys := NewSystem(testConfig())
	p := sys.NewPort("cpu")
	// Cold: TLB miss + L1 miss + L2 miss + LLC miss + DRAM.
	c1 := p.Access(0x10000, 8)
	want := uint64(80 + 2 + 10 + 30 + 100)
	if c1 != want {
		t.Errorf("cold access = %d, want %d", c1, want)
	}
	// Warm: everything hits.
	c2 := p.Access(0x10000, 8)
	if c2 != 2 {
		t.Errorf("warm access = %d, want 2", c2)
	}
	// Same line, different offset: still a hit.
	c3 := p.Access(0x10020, 4)
	if c3 != 2 {
		t.Errorf("same-line access = %d, want 2", c3)
	}
}

func TestLineStraddle(t *testing.T) {
	sys := NewSystem(testConfig())
	p := sys.NewPort("cpu")
	p.Access(0x10000, 128) // warm two lines (same page)
	c := p.Access(0x1003c, 8)
	if c != 4 { // two L1 hits
		t.Errorf("straddling access = %d, want 4", c)
	}
}

func TestZeroSize(t *testing.T) {
	sys := NewSystem(testConfig())
	p := sys.NewPort("cpu")
	if p.Access(0x10000, 0) != 0 || p.StreamAccess(0x10000, 0) != 0 {
		t.Error("zero-size access should cost 0")
	}
}

func TestL1Eviction(t *testing.T) {
	cfg := testConfig()
	sys := NewSystem(cfg)
	p := sys.NewPort("cpu")
	// L1: 1 KiB, 2-way, 64 B lines -> 8 sets. Three lines mapping to the
	// same set (stride = 8 sets * 64 B = 512 B) overflow the ways.
	p.Access(0x10000, 1)
	p.Access(0x10000+512, 1)
	p.Access(0x10000+1024, 1) // evicts 0x10000 from L1
	c := p.Access(0x10000, 1)
	if c != 2+10 { // L1 miss, L2 hit
		t.Errorf("evicted line access = %d, want 12", c)
	}
	st := p.L1Stats()
	if st.Hits != 0 || st.Misses != 4 {
		t.Errorf("L1 stats = %+v", st)
	}
}

func TestSharedL2BetweenPorts(t *testing.T) {
	sys := NewSystem(testConfig())
	cpu := sys.NewPort("cpu")
	acc := sys.NewPort("accel")
	cpu.Access(0x20000, 8)
	// The accelerator port misses its own L1/TLB but hits the shared L2.
	c := acc.Access(0x20000, 8)
	if c != 80+2+10 {
		t.Errorf("cross-port access = %d, want 92 (TLB walk + L1 miss + L2 hit)", c)
	}
}

func TestTLB(t *testing.T) {
	cfg := testConfig()
	cfg.TLBEntries = 2
	sys := NewSystem(cfg)
	p := sys.NewPort("cpu")
	p.Access(0x10000, 1)          // page A: walk
	p.Access(0x10000+PageSize, 1) // page B: walk
	c := p.Access(0x10000+8, 1)   // page A again: TLB hit
	if c != 2 {
		t.Errorf("TLB hit access = %d", c)
	}
	p.Access(0x10000+2*PageSize, 1) // page C: evicts LRU (B)
	st := p.TLBStats()
	if st.Misses != 3 || st.Hits != 1 {
		t.Errorf("TLB stats = %+v", st)
	}
}

func TestStreamOverlap(t *testing.T) {
	cfg := testConfig()
	cfg.StreamOverlap = 4
	sysA := NewSystem(cfg)
	pa := sysA.NewPort("a")
	stream := pa.StreamAccess(0x10000, 1024)

	cfgB := cfg
	cfgB.StreamOverlap = 1
	sysB := NewSystem(cfgB)
	pb := sysB.NewPort("b")
	demand := pb.StreamAccess(0x10000, 1024)

	if stream >= demand {
		t.Errorf("streaming (%d) should be cheaper than serialized (%d)", stream, demand)
	}
}

func TestHitRate(t *testing.T) {
	var s LevelStats
	if s.HitRate() != 0 {
		t.Error("empty stats hit rate should be 0")
	}
	s = LevelStats{Hits: 3, Misses: 1}
	if s.HitRate() != 0.75 {
		t.Errorf("HitRate = %f", s.HitRate())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cfg := testConfig()
	cfg.L1.SizeBytes = 100 // not a power-of-two set count
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	sys := NewSystem(cfg)
	sys.NewPort("x")
}

func TestDefaultConfigSane(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	p := sys.NewPort("cpu")
	cold := p.Access(0x40000, 8)
	warm := p.Access(0x40000, 8)
	if cold <= warm || warm != sys.Config().L1.HitLatency {
		t.Errorf("cold=%d warm=%d", cold, warm)
	}
}

func TestWorkingSetLocality(t *testing.T) {
	// Invariant: a small working set reaccessed repeatedly converges to
	// L1-hit cost; a huge streaming scan does not.
	sys := NewSystem(testConfig())
	p := sys.NewPort("cpu")
	var smallTotal uint64
	for pass := 0; pass < 10; pass++ {
		for a := uint64(0x10000); a < 0x10000+512; a += 64 {
			smallTotal += p.Access(a, 8)
		}
	}
	avgSmall := float64(smallTotal) / (10 * 8)
	if avgSmall > 20 {
		t.Errorf("small working set avg = %f cycles", avgSmall)
	}
	p2 := sys.NewPort("cpu2")
	var bigTotal uint64
	n := 0
	for a := uint64(0x100000); a < 0x100000+1<<20; a += 64 {
		bigTotal += p2.Access(a, 8)
		n++
	}
	avgBig := float64(bigTotal) / float64(n)
	if avgBig < 50 {
		t.Errorf("streaming scan avg = %f cycles, should be expensive", avgBig)
	}
}

// TestSystemStatAccessors covers the by-name hierarchy accessors the
// telemetry layer and external tooling use.
func TestSystemStatAccessors(t *testing.T) {
	sys := NewSystem(testConfig())
	cpu := sys.NewPort("cpu")
	sys.NewPort("accel")
	cpu.Access(0x10000, 8) // cold: misses all the way to DRAM
	cpu.Access(0x10000, 8) // warm: L1 hit

	if got := sys.PortNames(); len(got) != 2 || got[0] != "cpu" || got[1] != "accel" {
		t.Errorf("PortNames = %v", got)
	}
	if st, ok := sys.L1Stats("cpu"); !ok || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("L1Stats(cpu) = %+v, %v", st, ok)
	}
	if st, ok := sys.L1Stats("accel"); !ok || st.Hits != 0 || st.Misses != 0 {
		t.Errorf("L1Stats(accel) = %+v, %v", st, ok)
	}
	if st, ok := sys.TLBStats("cpu"); !ok || st.Misses != 1 {
		t.Errorf("TLBStats(cpu) = %+v, %v", st, ok)
	}
	if _, ok := sys.L1Stats("nope"); ok {
		t.Error("L1Stats found a nonexistent port")
	}
	if _, ok := sys.TLBStats("nope"); ok {
		t.Error("TLBStats found a nonexistent port")
	}
	if got, want := sys.DRAMAccesses(), sys.LLCStats().Misses; got != want {
		t.Errorf("DRAMAccesses = %d, LLC misses = %d", got, want)
	}

	counters := map[string]float64{}
	sys.CollectTelemetry(func(name string, v float64) { counters[name] = v })
	for _, name := range []string{
		"l2/hits", "l2/misses", "llc/hits", "llc/misses", "dram/accesses",
		"l1/cpu/hits", "l1/cpu/misses", "tlb/cpu/hits", "tlb/cpu/misses",
		"l1/accel/hits", "l1/accel/misses", "tlb/accel/hits", "tlb/accel/misses",
	} {
		if _, ok := counters[name]; !ok {
			t.Errorf("CollectTelemetry missing %q", name)
		}
	}
	if counters["l1/cpu/hits"] != 1 || counters["dram/accesses"] != 1 {
		t.Errorf("counter values off: %v", counters)
	}
}
