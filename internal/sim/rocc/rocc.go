// Package rocc models the RoCC custom-instruction interface between the
// application core and the protobuf accelerator (§4.1, §4.4.1, §4.5.2 of
// the paper). Each custom instruction carries two 64-bit register values
// to the accelerator with ones-of-cycles dispatch latency; setup
// instructions ({deser,ser}_info, *_assign_arena) pair with kick-off
// instructions (do_proto_{deser,ser}), and block_for_*_completion commits
// once all in-flight operations have finished — the batching middle ground
// the paper describes, with no software polling.
package rocc

import (
	"errors"
	"fmt"

	"protoacc/internal/accel/deser"
	"protoacc/internal/accel/mops"
	"protoacc/internal/accel/ser"
	"protoacc/internal/faults"
	"protoacc/internal/sim/mem"
	"protoacc/internal/telemetry"
)

// Opcode selects one of the accelerator's custom instructions.
type Opcode uint8

// The accelerator's custom instructions.
const (
	OpDeserAssignArena Opcode = iota
	OpSerAssignArena
	OpDeserInfo
	OpDoProtoDeser
	OpSerInfo
	OpDoProtoSer
	OpBlockForDeserCompletion
	OpBlockForSerCompletion

	// §7 extension: the message-operations unit's instructions. mops_info
	// supplies the ADT (and, for merge, the destination object);
	// do_proto_{clear,copy,merge} kick off the operation.
	OpMopsInfo
	OpDoProtoClear
	OpDoProtoCopy
	OpDoProtoMerge
	OpBlockForMopsCompletion
)

func (o Opcode) String() string {
	names := [...]string{
		"deser_assign_arena", "ser_assign_arena", "deser_info",
		"do_proto_deser", "ser_info", "do_proto_ser",
		"block_for_deser_completion", "block_for_ser_completion",
		"mops_info", "do_proto_clear", "do_proto_copy", "do_proto_merge",
		"block_for_mops_completion",
	}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("rocc.Opcode(%d)", uint8(o))
}

// Command is one RoCC instruction: an opcode plus two source registers.
type Command struct {
	Op       Opcode
	RS1, RS2 uint64
}

// Errors.
var (
	ErrNoInfo = errors.New("rocc: do_proto_* issued without preceding *_info")
	ErrState  = errors.New("rocc: protocol violation")
)

// DispatchCycles is the core-side cost of issuing one RoCC instruction
// ("low latency (ones-of-cycles)", §4.1).
const DispatchCycles = 2.0

// FenceCycles is the cost of the fence between CPU protobuf work and
// accelerator work (§4.1).
const FenceCycles = 10.0

// Accelerator couples the RoCC command router to the deserializer and
// serializer units (the CMD Router of Figures 9 and 10).
type Accelerator struct {
	Deser *deser.Unit
	Ser   *ser.Unit
	Mops  *mops.Unit // §7 extension: clear/copy/merge
	Mem   *mem.Memory

	// Pending setup state.
	deserADT, deserObj uint64
	deserInfoValid     bool
	serHasbitsOff      uint64
	serMinMax          uint64
	serInfoValid       bool
	mopsADT, mopsDst   uint64
	mopsInfoValid      bool

	// Tracer, when set and enabled, receives one event per issued
	// command on the router's cumulative-dispatch timeline (do_proto_*
	// kick-offs become spans covering the unit's busy time). Nil is
	// valid and means no tracing.
	Tracer *telemetry.Tracer

	// Inj, when non-nil and enabled, injects simulated RoCC queue
	// timeouts: a do_proto_* command that trials positive is dropped by
	// the router (the core gave up waiting on the queue) before reaching
	// its unit. Assigned by core.New; nil is valid (injection off).
	Inj *faults.Injector

	// Cycle accounting since the last block_for_*_completion.
	dispatch      float64
	deserInFlight float64
	serInFlight   float64
	mopsInFlight  float64

	// Telemetry counters (cumulative until Reset; barriers do not clear
	// them). cumDispatch is the router's own timeline for trace
	// timestamps; pending/queueHighWater track how many do_proto_*
	// operations were outstanding between barriers at the worst point.
	commands       uint64
	fences         uint64
	deserOps       uint64
	serOps         uint64
	mopsOps        uint64
	cumDispatch    float64
	pendingDeser   int
	pendingSer     int
	pendingMops    int
	queueHighWater int

	// Completed operation stats, appended per do_proto_*.
	DeserOps []deser.Stats
	SerOps   []ser.Stats
	MopsOps  []mops.Stats

	// CopyResults records the destination addresses do_proto_copy
	// produced (the value the instruction returns in rd).
	CopyResults []uint64
}

// CollectTelemetry implements telemetry.Collector.
func (a *Accelerator) CollectTelemetry(emit func(name string, value float64)) {
	emit("commands", float64(a.commands))
	emit("fences", float64(a.fences))
	emit("deser_ops", float64(a.deserOps))
	emit("ser_ops", float64(a.serOps))
	emit("mops_ops", float64(a.mopsOps))
	emit("dispatch_cycles", a.cumDispatch)
	emit("queue_high_water", float64(a.queueHighWater))
}

// traceCmd emits one command event on the router's dispatch timeline;
// dur > 0 marks a do_proto_* kick-off spanning the unit's busy time.
func (a *Accelerator) traceCmd(op Opcode, rs1 uint64, dur float64) {
	if a.Tracer.Enabled() {
		a.Tracer.Emit(telemetry.Event{
			Unit: "rocc", Name: op.String(), Cycle: a.cumDispatch, Dur: dur, Pos: rs1,
		})
	}
}

// enqueued bumps the per-class outstanding-operation count and the
// high-water mark across all classes.
func (a *Accelerator) enqueued(class *int) {
	*class++
	if q := a.pendingDeser + a.pendingSer + a.pendingMops; q > a.queueHighWater {
		a.queueHighWater = q
	}
}

// Issue executes one RoCC instruction. Operations complete "in the
// background": their cycle counts accumulate until the matching
// block_for_*_completion instruction is issued, whose return value is the
// total accelerator-busy time for the batch.
//
// Any error drops all pending *_info latches: a protocol violation or a
// faulted operation resets the command decoder, so a stale setup latch
// can never pair with a later well-formed kick-off sequence.
func (a *Accelerator) Issue(cmd Command) (float64, error) {
	busy, err := a.issue(cmd)
	if err != nil {
		a.clearInfo()
	}
	return busy, err
}

func (a *Accelerator) issue(cmd Command) (float64, error) {
	a.dispatch += DispatchCycles
	a.cumDispatch += DispatchCycles
	a.commands++
	switch cmd.Op {
	case OpDeserAssignArena, OpSerAssignArena:
		// Arena regions are assigned via AssignArenas (addresses alone
		// are not enough to recover region bounds in the model).
		a.traceCmd(cmd.Op, cmd.RS1, 0)
		return 0, nil
	case OpDeserInfo:
		a.deserADT, a.deserObj = cmd.RS1, cmd.RS2
		a.deserInfoValid = true
		a.traceCmd(cmd.Op, cmd.RS1, 0)
		return 0, nil
	case OpDoProtoDeser:
		if !a.deserInfoValid {
			return 0, ErrNoInfo
		}
		a.deserInfoValid = false
		if err := a.Inj.At(faults.SiteRoCCTimeout); err != nil {
			return 0, err
		}
		st, err := a.Deser.Deserialize(a.deserADT, a.deserObj, cmd.RS1, cmd.RS2)
		if err != nil {
			return 0, err
		}
		a.DeserOps = append(a.DeserOps, st)
		a.deserInFlight += st.Cycles
		a.deserOps++
		a.enqueued(&a.pendingDeser)
		a.traceCmd(cmd.Op, cmd.RS1, st.Cycles)
		return 0, nil
	case OpSerInfo:
		a.serHasbitsOff, a.serMinMax = cmd.RS1, cmd.RS2
		a.serInfoValid = true
		a.traceCmd(cmd.Op, cmd.RS1, 0)
		return 0, nil
	case OpDoProtoSer:
		if !a.serInfoValid {
			return 0, ErrNoInfo
		}
		a.serInfoValid = false
		if err := a.Inj.At(faults.SiteRoCCTimeout); err != nil {
			return 0, err
		}
		st, err := a.Ser.Serialize(cmd.RS1, cmd.RS2)
		if err != nil {
			return 0, err
		}
		a.SerOps = append(a.SerOps, st)
		a.serInFlight += st.Cycles
		a.serOps++
		a.enqueued(&a.pendingSer)
		a.traceCmd(cmd.Op, cmd.RS1, st.Cycles)
		return 0, nil
	case OpBlockForDeserCompletion:
		busy := a.deserInFlight + a.dispatch + FenceCycles
		a.deserInFlight, a.dispatch = 0, 0
		a.fences++
		a.pendingDeser = 0
		a.traceCmd(cmd.Op, 0, 0)
		return busy, nil
	case OpBlockForSerCompletion:
		busy := a.serInFlight + a.dispatch + FenceCycles
		a.serInFlight, a.dispatch = 0, 0
		a.fences++
		a.pendingSer = 0
		a.traceCmd(cmd.Op, 0, 0)
		return busy, nil
	case OpMopsInfo:
		a.mopsADT, a.mopsDst = cmd.RS1, cmd.RS2
		a.mopsInfoValid = true
		a.traceCmd(cmd.Op, cmd.RS1, 0)
		return 0, nil
	case OpDoProtoClear:
		if !a.mopsInfoValid {
			return 0, ErrNoInfo
		}
		a.mopsInfoValid = false
		if err := a.Inj.At(faults.SiteRoCCTimeout); err != nil {
			return 0, err
		}
		st, err := a.Mops.Clear(a.mopsADT, cmd.RS1)
		if err != nil {
			return 0, err
		}
		a.MopsOps = append(a.MopsOps, st)
		a.mopsInFlight += st.Cycles
		a.mopsOps++
		a.enqueued(&a.pendingMops)
		a.traceCmd(cmd.Op, cmd.RS1, st.Cycles)
		return 0, nil
	case OpDoProtoCopy:
		if !a.mopsInfoValid {
			return 0, ErrNoInfo
		}
		a.mopsInfoValid = false
		if err := a.Inj.At(faults.SiteRoCCTimeout); err != nil {
			return 0, err
		}
		dst, st, err := a.Mops.Copy(a.mopsADT, cmd.RS1)
		if err != nil {
			return 0, err
		}
		a.MopsOps = append(a.MopsOps, st)
		a.CopyResults = append(a.CopyResults, dst)
		a.mopsInFlight += st.Cycles
		a.mopsOps++
		a.enqueued(&a.pendingMops)
		a.traceCmd(cmd.Op, cmd.RS1, st.Cycles)
		return 0, nil
	case OpDoProtoMerge:
		if !a.mopsInfoValid {
			return 0, ErrNoInfo
		}
		a.mopsInfoValid = false
		if err := a.Inj.At(faults.SiteRoCCTimeout); err != nil {
			return 0, err
		}
		st, err := a.Mops.Merge(a.mopsADT, a.mopsDst, cmd.RS1)
		if err != nil {
			return 0, err
		}
		a.MopsOps = append(a.MopsOps, st)
		a.mopsInFlight += st.Cycles
		a.mopsOps++
		a.enqueued(&a.pendingMops)
		a.traceCmd(cmd.Op, cmd.RS1, st.Cycles)
		return 0, nil
	case OpBlockForMopsCompletion:
		busy := a.mopsInFlight + a.dispatch + FenceCycles
		a.mopsInFlight, a.dispatch = 0, 0
		a.fences++
		a.pendingMops = 0
		a.traceCmd(cmd.Op, 0, 0)
		return busy, nil
	default:
		return 0, fmt.Errorf("%w: unknown opcode %v", ErrState, cmd.Op)
	}
}

// clearInfo drops every pending *_info latch, returning the command
// decoder to its idle state.
func (a *Accelerator) clearInfo() {
	a.deserADT, a.deserObj, a.deserInfoValid = 0, 0, false
	a.serHasbitsOff, a.serMinMax, a.serInfoValid = 0, 0, false
	a.mopsADT, a.mopsDst, a.mopsInfoValid = 0, 0, false
}

// AbortInFlight drains the router after a faulted operation: completed
// in-flight operations are committed (their cycles, plus dispatch and the
// fence, are returned as busy time exactly as a barrier would), pending
// counts and setup latches are dropped. The partially-executed operation
// itself is not included — its attempt cycles come from the unit's own
// Abort method.
func (a *Accelerator) AbortInFlight() float64 {
	busy := a.deserInFlight + a.serInFlight + a.mopsInFlight + a.dispatch + FenceCycles
	a.deserInFlight, a.serInFlight, a.mopsInFlight, a.dispatch = 0, 0, 0, 0
	a.fences++
	a.pendingDeser, a.pendingSer, a.pendingMops = 0, 0, 0
	a.clearInfo()
	return busy
}

// Timeline returns the router's cumulative-dispatch timestamp, the
// timeline trace events are stamped on.
func (a *Accelerator) Timeline() float64 { return a.cumDispatch }

// Reset returns the accelerator to its post-construction state: pending
// setup, in-flight cycle accounting, the completed-operation logs, and
// the units' cumulative counters are all cleared. Required before reusing
// a pooled System so cycle deltas start from zero exactly as they would
// on a fresh accelerator.
//
// The per-operation stat logs are truncated in place rather than
// reallocated: a recycled System appends one Stats record per do_proto_*
// element, and dropping the backing arrays made every batch re-grow them
// element by element (measured while profiling the serving path).
func (a *Accelerator) Reset() {
	a.clearInfo()
	a.dispatch, a.deserInFlight, a.serInFlight, a.mopsInFlight = 0, 0, 0, 0
	a.DeserOps, a.SerOps, a.MopsOps, a.CopyResults =
		a.DeserOps[:0], a.SerOps[:0], a.MopsOps[:0], a.CopyResults[:0]
	a.commands, a.fences, a.deserOps, a.serOps, a.mopsOps = 0, 0, 0, 0, 0
	a.cumDispatch = 0
	a.pendingDeser, a.pendingSer, a.pendingMops, a.queueHighWater = 0, 0, 0, 0
	a.Deser.ResetStats()
	a.Ser.ResetStats()
	a.Mops.ResetStats()
}

// AssignArenas installs the accelerator arena regions (the model-level
// realization of the *_assign_arena instructions).
func (a *Accelerator) AssignArenas(deserArena *mem.Allocator, serData, serPtrs *mem.Region) {
	if deserArena != nil {
		a.Deser.Arena = deserArena
	}
	if serData != nil {
		a.Ser.AssignArena(serData, serPtrs)
	}
}

// DeserializeOp is the convenience pair (deser_info, do_proto_deser)
// followed by a completion barrier; returns total busy cycles.
func (a *Accelerator) DeserializeOp(adtAddr, objAddr, bufAddr, bufLen uint64) (float64, deser.Stats, error) {
	if _, err := a.Issue(Command{Op: OpDeserInfo, RS1: adtAddr, RS2: objAddr}); err != nil {
		return 0, deser.Stats{}, err
	}
	if _, err := a.Issue(Command{Op: OpDoProtoDeser, RS1: bufAddr, RS2: bufLen}); err != nil {
		return 0, deser.Stats{}, err
	}
	busy, err := a.Issue(Command{Op: OpBlockForDeserCompletion})
	if err != nil {
		return 0, deser.Stats{}, err
	}
	return busy, a.DeserOps[len(a.DeserOps)-1], nil
}

// SerializeOp is the convenience pair (ser_info, do_proto_ser) followed by
// a completion barrier; returns total busy cycles.
func (a *Accelerator) SerializeOp(adtAddr, objAddr uint64) (float64, ser.Stats, error) {
	if _, err := a.Issue(Command{Op: OpSerInfo}); err != nil {
		return 0, ser.Stats{}, err
	}
	if _, err := a.Issue(Command{Op: OpDoProtoSer, RS1: adtAddr, RS2: objAddr}); err != nil {
		return 0, ser.Stats{}, err
	}
	busy, err := a.Issue(Command{Op: OpBlockForSerCompletion})
	if err != nil {
		return 0, ser.Stats{}, err
	}
	return busy, a.SerOps[len(a.SerOps)-1], nil
}

// ClearOp is the convenience (mops_info, do_proto_clear, barrier) triple.
func (a *Accelerator) ClearOp(adtAddr, objAddr uint64) (float64, error) {
	if _, err := a.Issue(Command{Op: OpMopsInfo, RS1: adtAddr}); err != nil {
		return 0, err
	}
	if _, err := a.Issue(Command{Op: OpDoProtoClear, RS1: objAddr}); err != nil {
		return 0, err
	}
	return a.Issue(Command{Op: OpBlockForMopsCompletion})
}

// CopyOp deep-copies srcObj into the arena, returning busy cycles and the
// new object's address.
func (a *Accelerator) CopyOp(adtAddr, srcObj uint64) (float64, uint64, error) {
	if _, err := a.Issue(Command{Op: OpMopsInfo, RS1: adtAddr}); err != nil {
		return 0, 0, err
	}
	if _, err := a.Issue(Command{Op: OpDoProtoCopy, RS1: srcObj}); err != nil {
		return 0, 0, err
	}
	busy, err := a.Issue(Command{Op: OpBlockForMopsCompletion})
	if err != nil {
		return 0, 0, err
	}
	return busy, a.CopyResults[len(a.CopyResults)-1], nil
}

// MergeOp merges srcObj into dstObj.
func (a *Accelerator) MergeOp(adtAddr, dstObj, srcObj uint64) (float64, error) {
	if _, err := a.Issue(Command{Op: OpMopsInfo, RS1: adtAddr, RS2: dstObj}); err != nil {
		return 0, err
	}
	if _, err := a.Issue(Command{Op: OpDoProtoMerge, RS1: srcObj}); err != nil {
		return 0, err
	}
	return a.Issue(Command{Op: OpBlockForMopsCompletion})
}
