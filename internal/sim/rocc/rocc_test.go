package rocc

import (
	"testing"

	"protoacc/internal/accel/adt"
	"protoacc/internal/accel/deser"
	"protoacc/internal/accel/layout"
	"protoacc/internal/accel/mops"
	"protoacc/internal/accel/ser"
	"protoacc/internal/pb/codec"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/schema"
	"protoacc/internal/sim/mem"
	"protoacc/internal/sim/memmodel"
)

func setup(t *testing.T) (*Accelerator, *adt.Set, *layout.Materializer, *mem.Memory, *schema.Message) {
	t.Helper()
	typ := mustMessage("M",
		&schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32},
		&schema.Field{Name: "s", Number: 2, Kind: schema.KindString})
	m := mem.New()
	adtAlloc := mem.NewAllocator(m.Map("adt", 1<<20))
	heap := mem.NewAllocator(m.Map("heap", 1<<20))
	arena := mem.NewAllocator(m.Map("arena", 1<<20))
	serOut := m.Map("ser-out", 1<<20)
	serPtrs := m.Map("ser-ptrs", 1<<16)
	reg := layout.NewRegistry()
	set, err := adt.Build(m, adtAlloc, reg, typ)
	if err != nil {
		t.Fatal(err)
	}
	sys := memmodel.NewSystem(memmodel.DefaultConfig())
	port := sys.NewPort("accel")
	a := &Accelerator{
		Deser: deser.New(m, port, arena, deser.DefaultConfig()),
		Ser:   ser.New(m, port, ser.DefaultConfig()),
		Mem:   m,
	}
	a.AssignArenas(arena, serOut, serPtrs)
	return a, set, layout.NewMaterializer(m, heap, reg), m, typ
}

func TestProtocolRequiresInfo(t *testing.T) {
	a, _, _, _, _ := setup(t)
	if _, err := a.Issue(Command{Op: OpDoProtoDeser}); err != ErrNoInfo {
		t.Errorf("deser err = %v, want ErrNoInfo", err)
	}
	if _, err := a.Issue(Command{Op: OpDoProtoSer}); err != ErrNoInfo {
		t.Errorf("ser err = %v, want ErrNoInfo", err)
	}
}

func TestBatchedDeserializations(t *testing.T) {
	a, set, mat, m, typ := setup(t)
	msg := dynamic.New(typ)
	msg.SetInt32(1, 7)
	msg.SetString(2, "hi")
	b, _ := codec.Marshal(msg)
	inRegion := m.Map("in", 64)
	if err := m.WriteBytes(inRegion.Base, b); err != nil {
		t.Fatal(err)
	}
	// Issue three pairs before the barrier (the batching §4.4.1 allows).
	var objs []uint64
	for i := 0; i < 3; i++ {
		obj, err := mat.AllocObject(typ)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj)
		if _, err := a.Issue(Command{Op: OpDeserInfo, RS1: set.Addr(typ), RS2: obj}); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Issue(Command{Op: OpDoProtoDeser, RS1: inRegion.Base, RS2: uint64(len(b))}); err != nil {
			t.Fatal(err)
		}
	}
	busy, err := a.Issue(Command{Op: OpBlockForDeserCompletion})
	if err != nil {
		t.Fatal(err)
	}
	if busy <= 0 || len(a.DeserOps) != 3 {
		t.Errorf("busy=%f ops=%d", busy, len(a.DeserOps))
	}
	for _, obj := range objs {
		got, err := mat.Read(typ, obj)
		if err != nil || !msg.Equal(got) {
			t.Errorf("batched op result wrong: %v", err)
		}
	}
	// The barrier resets in-flight accounting.
	busy2, _ := a.Issue(Command{Op: OpBlockForDeserCompletion})
	if busy2 >= busy {
		t.Errorf("second barrier busy=%f should be just dispatch+fence", busy2)
	}
}

func TestSerializeOpRoundTrip(t *testing.T) {
	a, set, mat, m, typ := setup(t)
	msg := dynamic.New(typ)
	msg.SetInt32(1, 5)
	msg.SetString(2, "rocc")
	obj, err := mat.Write(msg)
	if err != nil {
		t.Fatal(err)
	}
	busy, st, err := a.SerializeOp(set.Addr(typ), obj)
	if err != nil {
		t.Fatal(err)
	}
	if busy < st.Cycles {
		t.Error("busy should include dispatch and fence")
	}
	addr, n, err := a.Ser.Output(0)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, n)
	if err := m.ReadBytes(addr, out); err != nil {
		t.Fatal(err)
	}
	want, _ := codec.Marshal(msg)
	if string(out) != string(want) {
		t.Error("rocc serialize output mismatch")
	}
}

func TestOpcodeStrings(t *testing.T) {
	for op := OpDeserAssignArena; op <= OpBlockForSerCompletion; op++ {
		if op.String() == "" {
			t.Errorf("opcode %d has empty name", op)
		}
	}
	if Opcode(99).String() != "rocc.Opcode(99)" {
		t.Error("unknown opcode format")
	}
}

func TestMopsOpcodes(t *testing.T) {
	a, set, mat, m, typ := setup(t)
	// Wire up a mops unit (setup only builds deser/ser).
	arena := mem.NewAllocator(m.Map("mops-arena", 1<<20))
	sysMem := memmodel.NewSystem(memmodel.DefaultConfig())
	a.Mops = mops.New(m, sysMem.NewPort("mops"), arena, mops.DefaultConfig())

	msg := dynamic.New(typ)
	msg.SetInt32(1, 5)
	msg.SetString(2, "mops")
	obj, err := mat.Write(msg)
	if err != nil {
		t.Fatal(err)
	}

	// Protocol: do_proto_* without mops_info is rejected.
	for _, op := range []Opcode{OpDoProtoClear, OpDoProtoCopy, OpDoProtoMerge} {
		if _, err := a.Issue(Command{Op: op}); err != ErrNoInfo {
			t.Errorf("%v without info: err = %v", op, err)
		}
	}

	// Copy.
	busy, dst, err := a.CopyOp(set.Addr(typ), obj)
	if err != nil {
		t.Fatal(err)
	}
	if busy <= 0 || dst == 0 {
		t.Errorf("copy busy=%f dst=%x", busy, dst)
	}
	got, err := mat.Read(typ, dst)
	if err != nil || !msg.Equal(got) {
		t.Errorf("copy result wrong: %v", err)
	}

	// Merge the original into the copy (idempotent values here).
	if _, err := a.MergeOp(set.Addr(typ), dst, obj); err != nil {
		t.Fatal(err)
	}

	// Clear the copy.
	if _, err := a.ClearOp(set.Addr(typ), dst); err != nil {
		t.Fatal(err)
	}
	cleared, err := mat.Read(typ, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(cleared.PresentFieldNumbers()) != 0 {
		t.Error("clear incomplete")
	}
	if len(a.MopsOps) != 3 {
		t.Errorf("MopsOps = %d", len(a.MopsOps))
	}
}

// TestErrorDropsInfoLatches is the regression test for the error-path
// state poisoning fix: any error returned by Issue — protocol violation
// or unit failure — must drop every pending *_info latch, so a stale
// setup can never pair with a later kick-off and a fresh well-formed
// sequence is never rejected.
func TestErrorDropsInfoLatches(t *testing.T) {
	a, set, mat, m, typ := setup(t)
	msg := dynamic.New(typ)
	msg.SetInt32(1, 9)
	msg.SetString(2, "latch")
	wire, _ := codec.Marshal(msg)
	in := m.Map("in", 64)
	if err := m.WriteBytes(in.Base, wire); err != nil {
		t.Fatal(err)
	}
	obj, err := mat.AllocObject(typ)
	if err != nil {
		t.Fatal(err)
	}

	// Latch deser_info, then violate the protocol on the ser path.
	if _, err := a.Issue(Command{Op: OpDeserInfo, RS1: set.Addr(typ), RS2: obj}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Issue(Command{Op: OpDoProtoSer}); err != ErrNoInfo {
		t.Fatalf("do_proto_ser without ser_info: err = %v, want ErrNoInfo", err)
	}
	// The error must have reset the decoder: the stale deser latch is gone.
	if _, err := a.Issue(Command{Op: OpDoProtoDeser, RS1: in.Base, RS2: uint64(len(wire))}); err != ErrNoInfo {
		t.Fatalf("stale deser_info survived an error: err = %v, want ErrNoInfo", err)
	}
	// A fresh well-formed sequence works and produces the right object.
	if _, _, err := a.DeserializeOp(set.Addr(typ), obj, in.Base, uint64(len(wire))); err != nil {
		t.Fatalf("recovery sequence rejected: %v", err)
	}
	got, err := mat.Read(typ, obj)
	if err != nil || !msg.Equal(got) {
		t.Fatalf("recovery sequence produced wrong object: %v", err)
	}

	// A unit-level failure resets the decoder too: latch ser_info, fail a
	// deserialization on malformed wire, then do_proto_ser must be
	// rejected rather than consuming the stale latch.
	bad := []byte{0x12, 0x7f} // string field claiming 127 bytes in a 2-byte buffer
	badRegion := m.Map("bad", 16)
	if err := m.WriteBytes(badRegion.Base, bad); err != nil {
		t.Fatal(err)
	}
	obj2, err := mat.AllocObject(typ)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Issue(Command{Op: OpSerInfo}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Issue(Command{Op: OpDeserInfo, RS1: set.Addr(typ), RS2: obj2}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Issue(Command{Op: OpDoProtoDeser, RS1: badRegion.Base, RS2: uint64(len(bad))}); err == nil {
		t.Fatal("malformed deserialization should error")
	}
	if _, err := a.Issue(Command{Op: OpDoProtoSer, RS1: set.Addr(typ), RS2: obj}); err != ErrNoInfo {
		t.Fatalf("ser_info latch survived a unit failure: err = %v, want ErrNoInfo", err)
	}
	// And the full serialize sequence recovers, matching the codec.
	if _, _, err := a.SerializeOp(set.Addr(typ), obj); err != nil {
		t.Fatalf("serialize recovery sequence rejected: %v", err)
	}
	addr, n, err := a.Ser.Output(0)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, n)
	if err := m.ReadBytes(addr, out); err != nil {
		t.Fatal(err)
	}
	if string(out) != string(wire) {
		t.Error("serialize output after recovery mismatches the codec")
	}
}

func TestUnknownOpcode(t *testing.T) {
	a, _, _, _, _ := setup(t)
	if _, err := a.Issue(Command{Op: Opcode(200)}); err == nil {
		t.Error("unknown opcode should error")
	}
}

// mustMessage is the test-local stand-in for the removed
// schema.MustMessage: build a type from known-good literal fields,
// panicking on error. Library code uses schema.NewMessage and returns
// the error.
func mustMessage(name string, fields ...*schema.Field) *schema.Message {
	m, err := schema.NewMessage(name, fields...)
	if err != nil {
		panic(err)
	}
	return m
}
