package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Manifest records how a stats artifact was produced, so checked-in
// results are reproducible: the exact command, the build's VCS revision,
// a fingerprint of the simulated configurations, and the harness
// parallelism (which, per the determinism contract, must not change any
// counter value — it is recorded so that claim is checkable).
type Manifest struct {
	Command           string `json:"command,omitempty"`
	GitRevision       string `json:"git_revision,omitempty"`
	GitDirty          bool   `json:"git_dirty,omitempty"`
	GoVersion         string `json:"go_version,omitempty"`
	ConfigFingerprint string `json:"config_fingerprint,omitempty"`
	Parallelism       int    `json:"parallelism"`
}

// statsDoc is the JSON snapshot schema.
type statsDoc struct {
	Schema   string             `json:"schema"`
	Manifest *Manifest          `json:"manifest,omitempty"`
	Counters map[string]float64 `json:"counters"`
}

// StatsSchema identifies the JSON snapshot format.
const StatsSchema = "protoacc-telemetry/v1"

// WriteStatsJSON writes a counter snapshot (plus an optional manifest) as
// an indented JSON document. Counter keys are emitted in sorted order
// (encoding/json sorts map keys), so identical snapshots produce
// byte-identical files.
func WriteStatsJSON(w io.Writer, m *Manifest, s Snapshot) error {
	doc := statsDoc{Schema: StatsSchema, Manifest: m, Counters: make(map[string]float64, s.Len())}
	for _, sm := range s.Samples() {
		doc.Counters[sm.Name] = sm.Value
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadStatsJSON parses a document written by WriteStatsJSON back into a
// manifest and a by-name counter map.
func ReadStatsJSON(r io.Reader) (*Manifest, map[string]float64, error) {
	var doc statsDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, nil, err
	}
	if doc.Schema != StatsSchema {
		return nil, nil, fmt.Errorf("telemetry: unknown stats schema %q", doc.Schema)
	}
	return doc.Manifest, doc.Counters, nil
}

// promName mangles a counter path into a Prometheus-legal metric name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("protoacc_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// splitTile recognizes a tile-indexed path segment ("serve/tile3/x" →
// base "serve/x", tile "3"). Tile-sharded counters export as one metric
// family with a tile label instead of one family per tile.
func splitTile(name string) (base, tile string) {
	for i := 0; i < len(name); {
		j := strings.IndexByte(name[i:], '/')
		var seg string
		if j < 0 {
			seg = name[i:]
			j = len(name)
		} else {
			seg = name[i : i+j]
			j = i + j
		}
		if rest, ok := strings.CutPrefix(seg, "tile"); ok && rest != "" {
			digits := true
			for _, r := range rest {
				if r < '0' || r > '9' {
					digits = false
					break
				}
			}
			if digits {
				if j == len(name) { // trailing "tile<i>" segment: not a shard prefix
					return name, ""
				}
				return name[:i] + name[j+1:], rest
			}
		}
		if j == len(name) {
			break
		}
		i = j + 1
	}
	return name, ""
}

// promSample is one exposition line of a family: a rendered label set
// (possibly empty) and a value.
type promSample struct {
	path   string // original counter path, for collision disambiguation
	labels []string
	value  float64
	hist   *HistogramSnapshot // non-nil for histogram families
}

// promFamily is one metric family: a single # TYPE line followed by its
// samples. Distinct counter paths that mangle to the same Prometheus
// name land in the same family (never a duplicate TYPE line); samples
// whose label sets would still collide gain a path label carrying the
// original counter path.
type promFamily struct {
	name    string
	kind    string
	samples []promSample
}

// buildFamilies folds samples into families in first-appearance order.
func buildFamilies(fams []*promFamily, byName map[string]*promFamily, kind string, samples []Sample, hists []NamedHistogram) []*promFamily {
	add := func(path, kind string, value float64, hist *HistogramSnapshot) {
		base, tile := splitTile(path)
		n := promName(base)
		f := byName[n]
		if f == nil {
			f = &promFamily{name: n, kind: kind}
			byName[n] = f
			fams = append(fams, f)
		}
		var labels []string
		if tile != "" {
			labels = append(labels, `tile="`+tile+`"`)
		}
		f.samples = append(f.samples, promSample{path: path, labels: labels, value: value, hist: hist})
	}
	for _, sm := range samples {
		add(sm.Name, kind, sm.Value, nil)
	}
	for _, nh := range hists {
		hs := nh.Hist.Snapshot()
		add(nh.Name, "histogram", 0, &hs)
	}
	return fams
}

// disambiguate appends a path label to samples of a family whose label
// sets collide (distinct original paths mangled to one name), so every
// exposition line stays unique.
func (f *promFamily) disambiguate() {
	seen := make(map[string][]int)
	for i, sm := range f.samples {
		key := strings.Join(sm.labels, ",")
		seen[key] = append(seen[key], i)
	}
	for _, idxs := range seen {
		if len(idxs) < 2 {
			continue
		}
		distinct := false
		for _, i := range idxs[1:] {
			if f.samples[i].path != f.samples[idxs[0]].path {
				distinct = true
			}
		}
		if !distinct {
			continue
		}
		for _, i := range idxs {
			f.samples[i].labels = append(f.samples[i].labels, `path="`+f.samples[i].path+`"`)
		}
	}
}

func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	return "{" + strings.Join(labels, ",") + "}"
}

// WritePrometheus writes the counter snapshot in Prometheus text
// exposition format. Equivalent to WritePrometheusMetrics with no gauges
// or histograms.
func WritePrometheus(w io.Writer, s Snapshot) error {
	return WritePrometheusMetrics(w, s, nil, nil)
}

// WritePrometheusMetrics writes counters, gauges, and histograms as one
// Prometheus text exposition: families in first-appearance order, one
// # TYPE line per family, tile-sharded paths folded into a tile label,
// and residual name collisions disambiguated with a path label.
// Histograms expose cumulative _bucket{le=...} series plus _sum/_count.
func WritePrometheusMetrics(w io.Writer, counters Snapshot, gauges []Sample, hists []NamedHistogram) error {
	byName := make(map[string]*promFamily)
	fams := buildFamilies(nil, byName, "counter", counters.Samples(), nil)
	fams = buildFamilies(fams, byName, "gauge", gauges, nil)
	fams = buildFamilies(fams, byName, "", nil, hists)
	for _, f := range fams {
		f.disambiguate()
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, sm := range f.samples {
			if sm.hist == nil {
				if _, err := fmt.Fprintf(w, "%s%s %v\n", f.name, renderLabels(sm.labels), sm.value); err != nil {
					return err
				}
				continue
			}
			var cum uint64
			for _, b := range sm.hist.Buckets {
				cum += b.Count
				le := append(sm.labels[:len(sm.labels):len(sm.labels)], fmt.Sprintf(`le="%d"`, b.Upper))
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(le), cum); err != nil {
					return err
				}
			}
			inf := append(sm.labels[:len(sm.labels):len(sm.labels)], `le="+Inf"`)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(inf), sm.hist.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n",
				f.name, renderLabels(sm.labels), sm.hist.Sum,
				f.name, renderLabels(sm.labels), sm.hist.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// traceEvent is one Chrome trace-event record. Field order is the JSON
// emission order (encoding/json follows declaration order), keeping
// exports byte-stable.
type traceEvent struct {
	Name  string     `json:"name"`
	Cat   string     `json:"cat,omitempty"`
	Phase string     `json:"ph"`
	Scope string     `json:"s,omitempty"`
	TS    float64    `json:"ts"`
	Dur   *float64   `json:"dur,omitempty"`
	PID   int        `json:"pid"`
	TID   int        `json:"tid"`
	Args  *traceArgs `json:"args,omitempty"`
}

type traceArgs struct {
	Name  string  `json:"name,omitempty"`
	Depth *int    `json:"depth,omitempty"`
	Field *int32  `json:"field,omitempty"`
	Pos   *uint64 `json:"pos,omitempty"`
	Note  string  `json:"note,omitempty"`
}

type traceDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// unitTIDs pins the well-known units to stable thread ids so traces from
// different runs line up in the viewer; unknown units get ids after them
// in first-seen order.
var unitTIDs = map[string]int{"rocc": 1, "deser": 2, "ser": 3, "mops": 4, "cpu": 5}

// WritePerfetto writes events as Chrome trace-event JSON (the format
// Perfetto's trace viewer and chrome://tracing load). Each unit becomes
// one named thread; instant events use phase "i" and spans phase "X".
// Timestamps map one simulated cycle to one microsecond of trace time, so
// the viewer's time axis reads directly in cycles.
func WritePerfetto(w io.Writer, events []Event) error {
	doc := traceDoc{DisplayTimeUnit: "ns", TraceEvents: []traceEvent{
		{Name: "process_name", Phase: "M", PID: 1, Args: &traceArgs{Name: "protoacc-sim"}},
	}}
	nextTID := len(unitTIDs) + 1
	tids := make(map[string]int)
	tidFor := func(unit string) int {
		if tid, ok := tids[unit]; ok {
			return tid
		}
		tid, ok := unitTIDs[unit]
		if !ok {
			tid = nextTID
			nextTID++
		}
		tids[unit] = tid
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: tid, Args: &traceArgs{Name: unit},
		})
		return tid
	}
	for _, ev := range events {
		te := traceEvent{
			Name: ev.Name, Cat: ev.Unit, Phase: "i", Scope: "t",
			TS: ev.Cycle, PID: 1, TID: tidFor(ev.Unit),
		}
		if ev.Dur > 0 {
			dur := ev.Dur
			te.Phase, te.Scope, te.Dur = "X", "", &dur
		}
		args := &traceArgs{Note: ev.Note}
		if ev.Depth != 0 {
			d := ev.Depth
			args.Depth = &d
		}
		if ev.Field != 0 {
			f := ev.Field
			args.Field = &f
		}
		if ev.Pos != 0 {
			p := ev.Pos
			args.Pos = &p
		}
		if args.Depth != nil || args.Field != nil || args.Pos != nil || args.Note != "" {
			te.Args = args
		}
		doc.TraceEvents = append(doc.TraceEvents, te)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
