package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Manifest records how a stats artifact was produced, so checked-in
// results are reproducible: the exact command, the build's VCS revision,
// a fingerprint of the simulated configurations, and the harness
// parallelism (which, per the determinism contract, must not change any
// counter value — it is recorded so that claim is checkable).
type Manifest struct {
	Command           string `json:"command,omitempty"`
	GitRevision       string `json:"git_revision,omitempty"`
	GitDirty          bool   `json:"git_dirty,omitempty"`
	GoVersion         string `json:"go_version,omitempty"`
	ConfigFingerprint string `json:"config_fingerprint,omitempty"`
	Parallelism       int    `json:"parallelism"`
}

// statsDoc is the JSON snapshot schema.
type statsDoc struct {
	Schema   string             `json:"schema"`
	Manifest *Manifest          `json:"manifest,omitempty"`
	Counters map[string]float64 `json:"counters"`
}

// StatsSchema identifies the JSON snapshot format.
const StatsSchema = "protoacc-telemetry/v1"

// WriteStatsJSON writes a counter snapshot (plus an optional manifest) as
// an indented JSON document. Counter keys are emitted in sorted order
// (encoding/json sorts map keys), so identical snapshots produce
// byte-identical files.
func WriteStatsJSON(w io.Writer, m *Manifest, s Snapshot) error {
	doc := statsDoc{Schema: StatsSchema, Manifest: m, Counters: make(map[string]float64, s.Len())}
	for _, sm := range s.Samples() {
		doc.Counters[sm.Name] = sm.Value
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadStatsJSON parses a document written by WriteStatsJSON back into a
// manifest and a by-name counter map.
func ReadStatsJSON(r io.Reader) (*Manifest, map[string]float64, error) {
	var doc statsDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, nil, err
	}
	if doc.Schema != StatsSchema {
		return nil, nil, fmt.Errorf("telemetry: unknown stats schema %q", doc.Schema)
	}
	return doc.Manifest, doc.Counters, nil
}

// promName mangles a counter path into a Prometheus-legal metric name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("protoacc_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes the snapshot in Prometheus text exposition
// format, one counter per line in snapshot order.
func WritePrometheus(w io.Writer, s Snapshot) error {
	for _, sm := range s.Samples() {
		n := promName(sm.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %v\n", n, n, sm.Value); err != nil {
			return err
		}
	}
	return nil
}

// traceEvent is one Chrome trace-event record. Field order is the JSON
// emission order (encoding/json follows declaration order), keeping
// exports byte-stable.
type traceEvent struct {
	Name  string     `json:"name"`
	Cat   string     `json:"cat,omitempty"`
	Phase string     `json:"ph"`
	Scope string     `json:"s,omitempty"`
	TS    float64    `json:"ts"`
	Dur   *float64   `json:"dur,omitempty"`
	PID   int        `json:"pid"`
	TID   int        `json:"tid"`
	Args  *traceArgs `json:"args,omitempty"`
}

type traceArgs struct {
	Name  string  `json:"name,omitempty"`
	Depth *int    `json:"depth,omitempty"`
	Field *int32  `json:"field,omitempty"`
	Pos   *uint64 `json:"pos,omitempty"`
	Note  string  `json:"note,omitempty"`
}

type traceDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// unitTIDs pins the well-known units to stable thread ids so traces from
// different runs line up in the viewer; unknown units get ids after them
// in first-seen order.
var unitTIDs = map[string]int{"rocc": 1, "deser": 2, "ser": 3, "mops": 4, "cpu": 5}

// WritePerfetto writes events as Chrome trace-event JSON (the format
// Perfetto's trace viewer and chrome://tracing load). Each unit becomes
// one named thread; instant events use phase "i" and spans phase "X".
// Timestamps map one simulated cycle to one microsecond of trace time, so
// the viewer's time axis reads directly in cycles.
func WritePerfetto(w io.Writer, events []Event) error {
	doc := traceDoc{DisplayTimeUnit: "ns", TraceEvents: []traceEvent{
		{Name: "process_name", Phase: "M", PID: 1, Args: &traceArgs{Name: "protoacc-sim"}},
	}}
	nextTID := len(unitTIDs) + 1
	tids := make(map[string]int)
	tidFor := func(unit string) int {
		if tid, ok := tids[unit]; ok {
			return tid
		}
		tid, ok := unitTIDs[unit]
		if !ok {
			tid = nextTID
			nextTID++
		}
		tids[unit] = tid
		doc.TraceEvents = append(doc.TraceEvents, traceEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: tid, Args: &traceArgs{Name: unit},
		})
		return tid
	}
	for _, ev := range events {
		te := traceEvent{
			Name: ev.Name, Cat: ev.Unit, Phase: "i", Scope: "t",
			TS: ev.Cycle, PID: 1, TID: tidFor(ev.Unit),
		}
		if ev.Dur > 0 {
			dur := ev.Dur
			te.Phase, te.Scope, te.Dur = "X", "", &dur
		}
		args := &traceArgs{Note: ev.Note}
		if ev.Depth != 0 {
			d := ev.Depth
			args.Depth = &d
		}
		if ev.Field != 0 {
			f := ev.Field
			args.Field = &f
		}
		if ev.Pos != 0 {
			p := ev.Pos
			args.Pos = &p
		}
		if args.Depth != nil || args.Field != nil || args.Pos != nil || args.Note != "" {
			te.Args = args
		}
		doc.TraceEvents = append(doc.TraceEvents, te)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
