package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func sampleEvents() []Event {
	return []Event{
		{Unit: "rocc", Name: "deser_info", Cycle: 2, Pos: 0x1000},
		{Unit: "rocc", Name: "do_proto_deser", Cycle: 4, Dur: 120, Pos: 0x2000},
		{Unit: "deser", Name: "parseKey", Cycle: 7, Depth: 1, Field: 3, Pos: 16},
		{Unit: "deser", Name: "subPush", Cycle: 20, Depth: 1, Field: 5},
		{Unit: "ser", Name: "message", Cycle: 0},
		{Unit: "mops", Name: "copy", Cycle: 40, Dur: 55},
		{Unit: "custom", Name: "odd", Cycle: 9, Note: "extra unit"},
	}
}

func TestWritePerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "perfetto_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/telemetry -update` to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Perfetto export drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestPerfettoSchema validates the structural contract the Perfetto /
// chrome://tracing loader requires, independent of byte-exact goldens.
func TestPerfettoSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string   `json:"name"`
			Phase string   `json:"ph"`
			Scope string   `json:"s"`
			TS    *float64 `json:"ts"`
			Dur   *float64 `json:"dur"`
			PID   *int     `json:"pid"`
			TID   *int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	var spans, instants, meta int
	tids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "" {
			t.Error("event with empty name")
		}
		if ev.PID == nil {
			t.Errorf("event %q missing pid", ev.Name)
		}
		switch ev.Phase {
		case "M":
			meta++
		case "i":
			instants++
			if ev.Scope != "t" {
				t.Errorf("instant %q scope = %q, want t", ev.Name, ev.Scope)
			}
			if ev.TS == nil {
				t.Errorf("instant %q missing ts", ev.Name)
			}
		case "X":
			spans++
			if ev.Dur == nil || *ev.Dur <= 0 {
				t.Errorf("span %q missing dur", ev.Name)
			}
		default:
			t.Errorf("event %q has unknown phase %q", ev.Name, ev.Phase)
		}
		if ev.TID != nil {
			tids[*ev.TID] = true
		}
	}
	if spans != 2 || instants != 5 {
		t.Errorf("spans=%d instants=%d, want 2 and 5", spans, instants)
	}
	// process_name + one thread_name per distinct unit.
	if meta != 1+5 {
		t.Errorf("metadata events = %d, want 6", meta)
	}
	// Well-known units keep their pinned lanes; the unknown one follows.
	for _, tid := range []int{1, 2, 3, 4, 6} {
		if !tids[tid] {
			t.Errorf("missing tid %d (have %v)", tid, tids)
		}
	}
}

func TestStatsJSONRoundTrip(t *testing.T) {
	s := Snapshot{samples: []Sample{
		{Name: "deser/cycles", Value: 123.5},
		{Name: "mem/l1/cpu/hits", Value: 99},
	}}
	m := &Manifest{Command: "ubench -fig 11a", GitRevision: "abc123", GoVersion: "go1.x",
		ConfigFingerprint: "deadbeef", Parallelism: 4}
	var buf bytes.Buffer
	if err := WriteStatsJSON(&buf, m, s); err != nil {
		t.Fatal(err)
	}
	gotM, counters, err := ReadStatsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *gotM != *m {
		t.Errorf("manifest round trip: %+v != %+v", gotM, m)
	}
	if counters["deser/cycles"] != 123.5 || counters["mem/l1/cpu/hits"] != 99 {
		t.Errorf("counters round trip: %v", counters)
	}

	// Unknown schema rejected.
	if _, _, err := ReadStatsJSON(strings.NewReader(`{"schema":"other/v9","counters":{}}`)); err == nil {
		t.Error("unknown schema accepted")
	}
}

func TestStatsJSONDeterministicBytes(t *testing.T) {
	s := Snapshot{samples: []Sample{{Name: "b", Value: 2}, {Name: "a", Value: 1}}}
	var x, y bytes.Buffer
	if err := WriteStatsJSON(&x, nil, s); err != nil {
		t.Fatal(err)
	}
	if err := WriteStatsJSON(&y, nil, s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(x.Bytes(), y.Bytes()) {
		t.Error("same snapshot produced different bytes")
	}
}

func TestWritePrometheus(t *testing.T) {
	s := Snapshot{samples: []Sample{
		{Name: "deser/stack_spills", Value: 3},
		{Name: "mem/l1/cpu/hits", Value: 42},
	}}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE protoacc_deser_stack_spills counter",
		"protoacc_deser_stack_spills 3",
		"protoacc_mem_l1_cpu_hits 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
