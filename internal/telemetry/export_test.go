package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func sampleEvents() []Event {
	return []Event{
		{Unit: "rocc", Name: "deser_info", Cycle: 2, Pos: 0x1000},
		{Unit: "rocc", Name: "do_proto_deser", Cycle: 4, Dur: 120, Pos: 0x2000},
		{Unit: "deser", Name: "parseKey", Cycle: 7, Depth: 1, Field: 3, Pos: 16},
		{Unit: "deser", Name: "subPush", Cycle: 20, Depth: 1, Field: 5},
		{Unit: "ser", Name: "message", Cycle: 0},
		{Unit: "mops", Name: "copy", Cycle: 40, Dur: 55},
		{Unit: "custom", Name: "odd", Cycle: 9, Note: "extra unit"},
	}
}

func TestWritePerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "perfetto_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/telemetry -update` to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Perfetto export drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestPerfettoSchema validates the structural contract the Perfetto /
// chrome://tracing loader requires, independent of byte-exact goldens.
func TestPerfettoSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string   `json:"name"`
			Phase string   `json:"ph"`
			Scope string   `json:"s"`
			TS    *float64 `json:"ts"`
			Dur   *float64 `json:"dur"`
			PID   *int     `json:"pid"`
			TID   *int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	var spans, instants, meta int
	tids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "" {
			t.Error("event with empty name")
		}
		if ev.PID == nil {
			t.Errorf("event %q missing pid", ev.Name)
		}
		switch ev.Phase {
		case "M":
			meta++
		case "i":
			instants++
			if ev.Scope != "t" {
				t.Errorf("instant %q scope = %q, want t", ev.Name, ev.Scope)
			}
			if ev.TS == nil {
				t.Errorf("instant %q missing ts", ev.Name)
			}
		case "X":
			spans++
			if ev.Dur == nil || *ev.Dur <= 0 {
				t.Errorf("span %q missing dur", ev.Name)
			}
		default:
			t.Errorf("event %q has unknown phase %q", ev.Name, ev.Phase)
		}
		if ev.TID != nil {
			tids[*ev.TID] = true
		}
	}
	if spans != 2 || instants != 5 {
		t.Errorf("spans=%d instants=%d, want 2 and 5", spans, instants)
	}
	// process_name + one thread_name per distinct unit.
	if meta != 1+5 {
		t.Errorf("metadata events = %d, want 6", meta)
	}
	// Well-known units keep their pinned lanes; the unknown one follows.
	for _, tid := range []int{1, 2, 3, 4, 6} {
		if !tids[tid] {
			t.Errorf("missing tid %d (have %v)", tid, tids)
		}
	}
}

func TestStatsJSONRoundTrip(t *testing.T) {
	s := Snapshot{samples: []Sample{
		{Name: "deser/cycles", Value: 123.5},
		{Name: "mem/l1/cpu/hits", Value: 99},
	}}
	m := &Manifest{Command: "ubench -fig 11a", GitRevision: "abc123", GoVersion: "go1.x",
		ConfigFingerprint: "deadbeef", Parallelism: 4}
	var buf bytes.Buffer
	if err := WriteStatsJSON(&buf, m, s); err != nil {
		t.Fatal(err)
	}
	gotM, counters, err := ReadStatsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *gotM != *m {
		t.Errorf("manifest round trip: %+v != %+v", gotM, m)
	}
	if counters["deser/cycles"] != 123.5 || counters["mem/l1/cpu/hits"] != 99 {
		t.Errorf("counters round trip: %v", counters)
	}

	// Unknown schema rejected.
	if _, _, err := ReadStatsJSON(strings.NewReader(`{"schema":"other/v9","counters":{}}`)); err == nil {
		t.Error("unknown schema accepted")
	}
}

func TestStatsJSONDeterministicBytes(t *testing.T) {
	s := Snapshot{samples: []Sample{{Name: "b", Value: 2}, {Name: "a", Value: 1}}}
	var x, y bytes.Buffer
	if err := WriteStatsJSON(&x, nil, s); err != nil {
		t.Fatal(err)
	}
	if err := WriteStatsJSON(&y, nil, s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(x.Bytes(), y.Bytes()) {
		t.Error("same snapshot produced different bytes")
	}
}

// Tile-indexed counter paths must fold into ONE family with a tile
// label (the pre-fix exporter emitted one family — and one duplicate
// # TYPE line — per tile), and residual collisions from the name
// mangling ("a/b_c" vs "a/b/c" both → protoacc_a_b_c) must stay apart
// via a path label. The whole exposition must satisfy the scraper rules.
func TestWritePrometheusTileLabelsAndCollisions(t *testing.T) {
	s := Snapshot{samples: []Sample{
		{Name: "serve/tile0/batches", Value: 1},
		{Name: "serve/tile1/batches", Value: 2},
		{Name: "serve/batches", Value: 3},
		{Name: "a/b_c", Value: 4},
		{Name: "a/b/c", Value: 5},
	}}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if n := strings.Count(out, "# TYPE protoacc_serve_batches "); n != 1 {
		t.Errorf("protoacc_serve_batches declared %d times, want 1:\n%s", n, out)
	}
	if n := strings.Count(out, "# TYPE protoacc_a_b_c "); n != 1 {
		t.Errorf("protoacc_a_b_c declared %d times, want 1:\n%s", n, out)
	}
	for _, want := range []string{
		`protoacc_serve_batches{tile="0"} 1`,
		`protoacc_serve_batches{tile="1"} 2`,
		"protoacc_serve_batches 3",
		`protoacc_a_b_c{path="a/b_c"} 4`,
		`protoacc_a_b_c{path="a/b/c"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := ValidatePrometheus(strings.NewReader(out)); err != nil {
		t.Errorf("exposition fails validation: %v\n%s", err, out)
	}
}

// A trailing tile<i> segment is a metric name, not a shard prefix — it
// must NOT become a tile label.
func TestWritePrometheusTrailingTileSegment(t *testing.T) {
	s := Snapshot{samples: []Sample{{Name: "router/picks/tile3", Value: 7}}}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "protoacc_router_picks_tile3 7") {
		t.Errorf("trailing tile segment mangled:\n%s", out)
	}
	if strings.Contains(out, `tile="3"`) {
		t.Errorf("trailing tile segment wrongly folded into a label:\n%s", out)
	}
}

// Histogram families must expose cumulative, tile-labeled
// _bucket{le=...} series capped by +Inf, plus _sum and _count, and the
// result must pass the scraper validator.
func TestWritePrometheusHistogramExposition(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{10, 100, 100000} {
		h.RecordValue(v)
	}
	gauges := []Sample{{Name: "serve/live/depth", Value: 4}}
	hists := []NamedHistogram{{Name: "serve/tile0/stage/execute_ns", Hist: &h}}
	var buf bytes.Buffer
	if err := WritePrometheusMetrics(&buf, Snapshot{}, gauges, hists); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE protoacc_serve_live_depth gauge",
		"protoacc_serve_live_depth 4",
		"# TYPE protoacc_serve_stage_execute_ns histogram",
		`protoacc_serve_stage_execute_ns_bucket{tile="0",le="+Inf"} 3`,
		`protoacc_serve_stage_execute_ns_sum{tile="0"} 100110`,
		`protoacc_serve_stage_execute_ns_count{tile="0"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Bucket counts must be cumulative (non-decreasing down the series).
	last := -1.0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "protoacc_serve_stage_execute_ns_bucket") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < last {
			t.Errorf("bucket series not cumulative at %q (prev %v)", line, last)
		}
		last = v
	}
	if err := ValidatePrometheus(strings.NewReader(out)); err != nil {
		t.Errorf("histogram exposition fails validation: %v\n%s", err, out)
	}
}

// The validator must reject each structural violation a scraper would
// choke on, and accept a well-formed histogram exposition.
func TestValidatePrometheusRejects(t *testing.T) {
	bad := map[string]string{
		"duplicate TYPE":       "# TYPE protoacc_x counter\nprotoacc_x 1\n# TYPE protoacc_x counter\nprotoacc_x 2\n",
		"duplicate series":     "# TYPE protoacc_x counter\nprotoacc_x{a=\"1\"} 1\nprotoacc_x{a=\"1\"} 2\n",
		"sample without TYPE":  "protoacc_x 1\n",
		"interleaved family":   "# TYPE protoacc_x counter\nprotoacc_x 1\n# TYPE protoacc_y counter\nprotoacc_y 1\nprotoacc_x 2\n",
		"illegal metric name":  "# TYPE protoacc_x counter\nprotoacc-x 1\n",
		"unparseable value":    "# TYPE protoacc_x counter\nprotoacc_x one\n",
		"unknown kind":         "# TYPE protoacc_x widget\nprotoacc_x 1\n",
		"unquoted label value": "# TYPE protoacc_x counter\nprotoacc_x{a=1} 1\n",
	}
	for name, exp := range bad {
		if err := ValidatePrometheus(strings.NewReader(exp)); err == nil {
			t.Errorf("%s accepted:\n%s", name, exp)
		}
	}
	good := "# TYPE protoacc_h histogram\n" +
		"protoacc_h_bucket{le=\"10\"} 1\nprotoacc_h_bucket{le=\"+Inf\"} 2\n" +
		"protoacc_h_sum 12\nprotoacc_h_count 2\n"
	if err := ValidatePrometheus(strings.NewReader(good)); err != nil {
		t.Errorf("well-formed histogram rejected: %v", err)
	}
}

func TestWritePrometheus(t *testing.T) {
	s := Snapshot{samples: []Sample{
		{Name: "deser/stack_spills", Value: 3},
		{Name: "mem/l1/cpu/hits", Value: 42},
	}}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE protoacc_deser_stack_spills counter",
		"protoacc_deser_stack_spills 3",
		"protoacc_mem_l1_cpu_hits 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
