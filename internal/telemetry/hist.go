package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Log-linear histogram: one major bucket per power of two, histMinors
// linear minors per major — the usual HDR shape. Constant memory, ~6%
// worst-case relative error at the minor resolution, and every mutation
// is a plain atomic add, so one histogram can be recorded into by many
// goroutines and scraped concurrently without locks. This is the
// histogram the loadgen measured client latency with since PR 4,
// promoted into the telemetry layer so the serving daemon records its
// server-side stage latencies into the same bucket scheme and the two
// sides of a measurement are directly comparable.

const (
	histMinors    = 16
	histMinorBits = 4
	// HistBuckets is the fixed bucket count of every Histogram.
	HistBuckets = (64 - histMinorBits + 1) * histMinors
)

// Histogram counts samples in nanoseconds (or any other nonnegative
// integer unit — bucket boundaries are unit-agnostic). The zero value is
// an empty histogram ready to use.
//
// Concurrency contract: Record/RecordValue are lock-free (atomic adds
// plus a CAS loop for the max) and readers (Snapshot, Quantile, Merge)
// use atomic loads, so a scraper observing a histogram mid-run sees a
// torn-but-monotonic view — each bucket individually consistent — and
// never perturbs writers. Exact cross-field consistency (count == sum of
// buckets) holds at quiescence, which is when the determinism tests
// compare.
type Histogram struct {
	counts [HistBuckets]uint64
	total  uint64
	sum    uint64
	max    uint64
}

func histIndex(v uint64) int {
	if v < histMinors {
		return int(v)
	}
	major := bits.Len64(v) - 1 // >= histMinorBits
	shift := uint(major - histMinorBits)
	minor := (v >> shift) & (histMinors - 1)
	return (major-histMinorBits+1)*histMinors + int(minor)
}

// BucketUpper returns the largest value the bucket at idx can hold.
func BucketUpper(idx int) uint64 {
	if idx < histMinors {
		return uint64(idx)
	}
	major := idx/histMinors + histMinorBits - 1
	minor := uint64(idx % histMinors)
	shift := uint(major - histMinorBits)
	return ((histMinors+minor)<<shift | (1<<shift - 1))
}

// Record adds one duration sample (negative durations clamp to zero).
func (h *Histogram) Record(d time.Duration) {
	ns := uint64(d)
	if d < 0 {
		ns = 0
	}
	h.RecordValue(ns)
}

// RecordValue adds one raw sample.
func (h *Histogram) RecordValue(v uint64) {
	atomic.AddUint64(&h.counts[histIndex(v)], 1)
	atomic.AddUint64(&h.total, 1)
	atomic.AddUint64(&h.sum, v)
	for {
		cur := atomic.LoadUint64(&h.max)
		if v <= cur || atomic.CompareAndSwapUint64(&h.max, cur, v) {
			return
		}
	}
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.counts {
		if c := atomic.LoadUint64(&o.counts[i]); c != 0 {
			atomic.AddUint64(&h.counts[i], c)
		}
	}
	atomic.AddUint64(&h.total, atomic.LoadUint64(&o.total))
	atomic.AddUint64(&h.sum, atomic.LoadUint64(&o.sum))
	om := atomic.LoadUint64(&o.max)
	for {
		cur := atomic.LoadUint64(&h.max)
		if om <= cur || atomic.CompareAndSwapUint64(&h.max, cur, om) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return atomic.LoadUint64(&h.total) }

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() uint64 { return atomic.LoadUint64(&h.sum) }

// Max returns the largest recorded sample.
func (h *Histogram) Max() uint64 { return atomic.LoadUint64(&h.max) }

// Mean returns the mean sample as a duration.
func (h *Histogram) Mean() time.Duration {
	t := atomic.LoadUint64(&h.total)
	if t == 0 {
		return 0
	}
	return time.Duration(atomic.LoadUint64(&h.sum) / t)
}

// Quantile returns an upper bound on the q'th quantile (0 < q <= 1) at
// the histogram's bucket resolution.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := atomic.LoadUint64(&h.total)
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	max := atomic.LoadUint64(&h.max)
	var seen uint64
	for i := range h.counts {
		seen += atomic.LoadUint64(&h.counts[i])
		if seen > rank {
			u := BucketUpper(i)
			if u > max {
				u = max
			}
			return time.Duration(u)
		}
	}
	return time.Duration(max)
}

// HistBucket is one occupied bucket of a histogram snapshot: the bucket's
// inclusive upper bound and its raw (non-cumulative) sample count.
type HistBucket struct {
	Upper uint64 `json:"upper"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram: only occupied
// buckets, in ascending bound order.
type HistogramSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Max     uint64       `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's occupied buckets.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: atomic.LoadUint64(&h.total),
		Sum:   atomic.LoadUint64(&h.sum),
		Max:   atomic.LoadUint64(&h.max),
	}
	for i := range h.counts {
		if c := atomic.LoadUint64(&h.counts[i]); c != 0 {
			s.Buckets = append(s.Buckets, HistBucket{Upper: BucketUpper(i), Count: c})
		}
	}
	return s
}
