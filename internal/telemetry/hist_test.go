package telemetry

import (
	"math/rand"
	"testing"
	"time"
)

// The histogram's quantiles must bound true quantiles to bucket precision.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
		{0.999, 999 * time.Microsecond},
	} {
		got := h.Quantile(tc.q)
		if got < tc.want || got > tc.want+tc.want/10 {
			t.Errorf("q%.3f = %v, want within [%v, +10%%]", tc.q, got, tc.want)
		}
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram quantile/mean not zero")
	}
}

// Every recorded value must land in a bucket whose bounds contain it:
// BucketUpper(histIndex(v)) >= v, and the previous bucket's upper bound
// is strictly below v. At the log-linear resolution (16 minors per
// power of two) the bucket width bounds the relative error at ~1/16.
func TestHistogramBucketBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	values := []uint64{0, 1, 15, 16, 17, 31, 32, 255, 256, 1<<20 - 1, 1 << 20, 1<<63 - 1, 1 << 63}
	for i := 0; i < 10000; i++ {
		values = append(values, rng.Uint64()>>uint(rng.Intn(64)))
	}
	for _, v := range values {
		idx := histIndex(v)
		if idx < 0 || idx >= HistBuckets {
			t.Fatalf("histIndex(%d) = %d out of range", v, idx)
		}
		upper := BucketUpper(idx)
		if v > upper {
			t.Fatalf("value %d above its bucket upper bound %d (idx %d)", v, upper, idx)
		}
		if idx > 0 {
			if prev := BucketUpper(idx - 1); v <= prev {
				t.Fatalf("value %d not above previous bucket's upper bound %d (idx %d)", v, prev, idx)
			}
		}
		// Relative error bound: bucket width / value <= ~1/16 once past
		// the unit-width linear region.
		if v >= 16 {
			lower := BucketUpper(idx - 1)
			if width := upper - lower; width > v/8 {
				t.Fatalf("bucket %d holding %d is %d wide (> value/8)", idx, v, width)
			}
		}
	}
	// Bucket upper bounds must be strictly increasing.
	for i := 1; i < HistBuckets; i++ {
		if BucketUpper(i) <= BucketUpper(i-1) {
			t.Fatalf("BucketUpper not increasing at %d: %d <= %d", i, BucketUpper(i), BucketUpper(i-1))
		}
	}
}

// Merging per-shard histograms must reproduce the single-histogram result
// exactly: same bucket counts, count, sum, max, and therefore identical
// quantiles. This is the contract that makes per-tile shards, per-worker
// loadgen shards, and their scrape-time merges interchangeable.
func TestHistogramMergeOfShardsEqualsSingle(t *testing.T) {
	const shards = 4
	rng := rand.New(rand.NewSource(99))
	var single Histogram
	var parts [shards]Histogram
	for i := 0; i < 20000; i++ {
		v := rng.Uint64() >> uint(rng.Intn(64))
		single.RecordValue(v)
		parts[i%shards].RecordValue(v)
	}
	var merged Histogram
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged.Count() != single.Count() || merged.Sum() != single.Sum() || merged.Max() != single.Max() {
		t.Fatalf("merge drifted: count %d/%d sum %d/%d max %d/%d",
			merged.Count(), single.Count(), merged.Sum(), single.Sum(), merged.Max(), single.Max())
	}
	ms, ss := merged.Snapshot(), single.Snapshot()
	if len(ms.Buckets) != len(ss.Buckets) {
		t.Fatalf("bucket shapes differ: %d vs %d", len(ms.Buckets), len(ss.Buckets))
	}
	for i := range ms.Buckets {
		if ms.Buckets[i] != ss.Buckets[i] {
			t.Fatalf("bucket %d differs: merged %+v single %+v", i, ms.Buckets[i], ss.Buckets[i])
		}
	}
	for q := 0.01; q <= 1.0; q += 0.01 {
		if merged.Quantile(q) != single.Quantile(q) {
			t.Fatalf("q%.2f differs: merged %v single %v", q, merged.Quantile(q), single.Quantile(q))
		}
	}
}

// Quantile must be monotone in q and clamped to [0, max].
func TestHistogramQuantileMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h Histogram
	for i := 0; i < 5000; i++ {
		h.RecordValue(rng.Uint64() >> uint(rng.Intn(50)))
	}
	prev := time.Duration(-1)
	for q := 0.001; q <= 1.0; q += 0.013 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("quantile not monotone: q%.3f = %v < previous %v", q, cur, prev)
		}
		prev = cur
	}
	if got := h.Quantile(1.0); got != time.Duration(h.Max()) {
		t.Errorf("q1.0 = %v, want max %v", got, time.Duration(h.Max()))
	}
}

// Negative durations clamp to zero; snapshot bucket counts total the
// recorded count and carry only occupied buckets in ascending order.
func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	h.Record(-5 * time.Second)
	h.Record(0)
	h.Record(time.Microsecond)
	h.Record(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("snapshot count = %d, want 4", s.Count)
	}
	var total uint64
	for i, b := range s.Buckets {
		if b.Count == 0 {
			t.Errorf("snapshot carries empty bucket at %d", i)
		}
		if i > 0 && b.Upper <= s.Buckets[i-1].Upper {
			t.Errorf("snapshot buckets out of order at %d", i)
		}
		total += b.Count
	}
	if total != s.Count {
		t.Errorf("bucket counts sum to %d, want %d", total, s.Count)
	}
	if s.Max != uint64(time.Millisecond) {
		t.Errorf("snapshot max = %d, want %d", s.Max, uint64(time.Millisecond))
	}
}

// Registry histogram and gauge registration must surface through the
// scrape-side enumeration paths without touching the counter snapshot
// (Snapshot stays counters-only — the determinism contract).
func TestRegistryHistogramsAndGauges(t *testing.T) {
	var r Registry
	var h Histogram
	h.RecordValue(42)
	r.RegisterHistogram("x/lat_ns", &h)
	r.RegisterGauge("x/depth", func() float64 { return 7 })

	if n := r.Snapshot().Len(); n != 0 {
		t.Errorf("counter snapshot picked up %d non-counter metrics", n)
	}
	hs := r.Histograms()
	if len(hs) != 1 || hs[0].Name != "x/lat_ns" || hs[0].Hist.Count() != 1 {
		t.Errorf("Histograms() = %+v", hs)
	}
	gs := r.GaugeValues()
	if len(gs) != 1 || gs[0].Name != "x/depth" || gs[0].Value != 7 {
		t.Errorf("GaugeValues() = %+v", gs)
	}
}
