package telemetry

import "testing"

// The overhead contract (package doc): with tracing and per-op capture
// off, the telemetry layer adds zero allocations to the simulation hot
// paths. These guards are run by `make vet`; a regression here means an
// emit site started paying even when observability is disabled.

func TestDisabledTracerEmitAllocsNothing(t *testing.T) {
	tr := &Tracer{}
	if n := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{Unit: "deser", Name: "parseKey", Cycle: 1, Depth: 2, Field: 3, Pos: 4})
	}); n != 0 {
		t.Errorf("disabled Emit allocates %v/op, want 0", n)
	}
}

func TestNilTracerEmitAllocsNothing(t *testing.T) {
	var tr *Tracer
	if n := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{Unit: "ser", Name: "field"})
	}); n != 0 {
		t.Errorf("nil Emit allocates %v/op, want 0", n)
	}
}

func TestDisabledPerOpAllocsNothing(t *testing.T) {
	var h Hub
	h.Registry.Register("u", CollectorFunc(func(emit func(string, float64)) {
		emit("c", 1)
	}))
	if n := testing.AllocsPerRun(1000, func() {
		if h.OpBegin() {
			t.Fatal("per-op unexpectedly on")
		}
	}); n != 0 {
		t.Errorf("disabled OpBegin allocates %v/op, want 0", n)
	}
}

// Enabled steady-state emission must not allocate per event once the
// buffer has grown (append reuses capacity), and repeated SnapshotInto
// reuses sample storage. These are amortized paths, checked loosely.
func TestEnabledTracerAmortizedAppend(t *testing.T) {
	tr := &Tracer{}
	tr.Enable()
	for i := 0; i < 4096; i++ {
		tr.Emit(Event{Name: "warm"})
	}
	tr.events = tr.events[:0]
	if n := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{Name: "steady"})
		tr.events = tr.events[:0]
	}); n != 0 {
		t.Errorf("steady-state Emit allocates %v/op, want 0", n)
	}
}
