package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ValidatePrometheus checks a Prometheus text exposition for the
// structural rules a scraper enforces: legal metric and label names,
// parseable values, exactly one # TYPE line per family (the duplicate
// TYPE emission was the bug the exporter's collision handling fixes),
// samples grouped contiguously under their family, every sample covered
// by a declared family, and no two samples of a family sharing an
// identical label set. Returns nil for an empty exposition.
func ValidatePrometheus(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	declared := make(map[string]string) // family -> kind
	seenSeries := make(map[string]bool) // family+labels
	current := ""                       // family whose block we are inside
	closed := make(map[string]bool)     // families whose block has ended
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				name, kind := fields[2], fields[3]
				if _, dup := declared[name]; dup {
					return fmt.Errorf("line %d: duplicate # TYPE for family %s", lineNo, name)
				}
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric kind %q", lineNo, kind)
				}
				declared[name] = kind
				if current != "" {
					closed[current] = true
				}
				current = name
			}
			continue
		}
		name, labels, value, err := splitSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if !validMetricName(name) {
			return fmt.Errorf("line %d: illegal metric name %q", lineNo, name)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("line %d: unparseable value %q", lineNo, value)
		}
		fam := sampleFamily(name, declared)
		if fam == "" {
			return fmt.Errorf("line %d: sample %s has no preceding # TYPE", lineNo, name)
		}
		if fam != current {
			if closed[fam] {
				return fmt.Errorf("line %d: family %s interleaved with other families", lineNo, fam)
			}
			return fmt.Errorf("line %d: sample %s outside its family block (in %s)", lineNo, name, current)
		}
		series := name + "{" + labels + "}"
		if seenSeries[series] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, series)
		}
		seenSeries[series] = true
	}
	return sc.Err()
}

// splitSample splits "name{labels} value" / "name value" into parts,
// validating label syntax along the way.
func splitSample(line string) (name, labels, value string, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
		for _, pair := range splitLabelPairs(labels) {
			eq := strings.IndexByte(pair, '=')
			if eq <= 0 {
				return "", "", "", fmt.Errorf("malformed label pair %q", pair)
			}
			lname, lval := pair[:eq], pair[eq+1:]
			if !validLabelName(lname) {
				return "", "", "", fmt.Errorf("illegal label name %q", lname)
			}
			if len(lval) < 2 || lval[0] != '"' || lval[len(lval)-1] != '"' {
				return "", "", "", fmt.Errorf("unquoted label value in %q", pair)
			}
		}
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return "", "", "", fmt.Errorf("no value in sample line %q", line)
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp:])
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", "", "", fmt.Errorf("malformed sample line %q", line)
	}
	return name, labels, fields[0], nil
}

// splitLabelPairs splits a label body on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func validMetricName(s string) bool {
	for i, r := range s {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return s != ""
}

func validLabelName(s string) bool {
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return s != ""
}

// sampleFamily maps a sample name to its declared family, accounting for
// histogram/summary suffixes (_bucket, _sum, _count, quantile series).
func sampleFamily(name string, declared map[string]string) string {
	if _, ok := declared[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if kind := declared[base]; kind == "histogram" || kind == "summary" {
				return base
			}
		}
	}
	return ""
}
