// Package telemetry is the unified observability layer of the simulator:
// a registry of named, hierarchically-grouped counters that every unit
// (deserializer, serializer, message-operations, CPU model, RoCC router,
// and the cache/TLB/DRAM hierarchy) registers into, a cycle-timestamped
// structured trace stream, and exporters (JSON snapshot, Prometheus-style
// text, Chrome trace-event / Perfetto JSON).
//
// Design contract (the "overhead contract"):
//
//   - Counters live inside the units that own them (their existing Stats
//     structs); the registry holds only Collector callbacks enumerated on
//     demand by Snapshot. Incrementing a counter is a plain field add and
//     collection costs nothing until somebody asks, so the hot simulation
//     paths pay zero allocations and zero extra work when no snapshot is
//     taken.
//   - Tracing is opt-in per System. A disabled (or nil) Tracer makes every
//     emit site a single predictable branch; callers must check Enabled()
//     before building events whose construction itself would allocate
//     (e.g. formatted notes). The zero-allocation property is enforced by
//     a guard test run from `make vet`.
//   - Everything is deterministic: collectors are enumerated in
//     registration order, snapshots of the same System are identical
//     between serial and parallel harness runs, and aggregation across
//     runs sums in sorted key order.
package telemetry

import "sort"

// Collector is implemented by any unit exposing counters. The unit calls
// emit once per counter with a name relative to its registration prefix
// ("stack_spills", "l1/cpu/hits", ...). Implementations must emit the
// same names in the same order on every call — the determinism and
// delta semantics rely on a stable shape.
type Collector interface {
	CollectTelemetry(emit func(name string, value float64))
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(emit func(name string, value float64))

// CollectTelemetry implements Collector.
func (f CollectorFunc) CollectTelemetry(emit func(name string, value float64)) { f(emit) }

// Sample is one named counter value.
type Sample struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Snapshot is a point-in-time enumeration of every registered counter,
// in registration order.
type Snapshot struct {
	samples []Sample
}

// Len returns the number of samples.
func (s Snapshot) Len() int { return len(s.samples) }

// Samples returns the underlying sample slice (callers must not modify).
func (s Snapshot) Samples() []Sample { return s.samples }

// Get returns the value of the named counter, or (0, false).
func (s Snapshot) Get(name string) (float64, bool) {
	for _, sm := range s.samples {
		if sm.Name == name {
			return sm.Value, true
		}
	}
	return 0, false
}

// Zero reports whether every counter in the snapshot is zero.
func (s Snapshot) Zero() bool {
	for _, sm := range s.samples {
		if sm.Value != 0 {
			return false
		}
	}
	return true
}

// Delta returns s minus prev, counter by counter. Snapshots of the same
// registry share a shape, so the subtraction is positional; a name
// mismatch (snapshots of different registries) falls back to matching by
// name, treating counters missing from prev as zero.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{samples: make([]Sample, len(s.samples))}
	aligned := len(prev.samples) == len(s.samples)
	if aligned {
		for i := range s.samples {
			if s.samples[i].Name != prev.samples[i].Name {
				aligned = false
				break
			}
		}
	}
	if aligned {
		for i, sm := range s.samples {
			out.samples[i] = Sample{Name: sm.Name, Value: sm.Value - prev.samples[i].Value}
		}
		return out
	}
	byName := make(map[string]float64, len(prev.samples))
	for _, sm := range prev.samples {
		byName[sm.Name] = sm.Value
	}
	for i, sm := range s.samples {
		out.samples[i] = Sample{Name: sm.Name, Value: sm.Value - byName[sm.Name]}
	}
	return out
}

// group is one registered collector with its name prefix. The full
// "<prefix>/<name>" strings are interned on first enumeration and reused
// afterwards — the Collector contract guarantees a stable shape, and
// snapshotting is on the serving hot path (once per batch), where
// rebuilding a couple hundred concatenated names dominated the cost.
type group struct {
	prefix string
	c      Collector
	names  []string // cached full names, built on first enumeration
}

// Registry is an ordered set of named counter groups, plus first-class
// histogram and gauge registrations. The zero value is ready to use.
// Registration happens at System construction; Snapshot enumerates every
// group's counters on demand.
//
// Counters and the other two kinds deliberately live on separate
// enumeration paths: Snapshot stays counters-only, because its output
// feeds the bitwise determinism contracts (serial-vs-parallel,
// 1-tile-vs-N-tile), while histograms and gauges typically carry
// wall-clock measurements that legitimately differ run to run. The
// live-scrape exporters (WritePrometheusMetrics) consume all three.
type Registry struct {
	groups []group
	hists  []NamedHistogram
	gauges []namedGauge
}

// NamedHistogram pairs a registered histogram with its counter-style
// path name.
type NamedHistogram struct {
	Name string
	Hist *Histogram
}

type namedGauge struct {
	name string
	fn   func() float64
}

// Register adds a collector under the given prefix ("deser", "mem", ...).
// Counter names become "<prefix>/<name>".
func (r *Registry) Register(prefix string, c Collector) {
	r.groups = append(r.groups, group{prefix: prefix, c: c})
}

// RegisterFunc is Register for a bare function.
func (r *Registry) RegisterFunc(prefix string, fn CollectorFunc) {
	r.Register(prefix, fn)
}

// RegisterHistogram adds a histogram under a full path name
// ("serve/tile0/stage/execute_ns", ...). Several shards may register
// under distinct names and be merged by the consumer; a name may also be
// registered once per shard and folded by the Prometheus exporter's
// label rules.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	r.hists = append(r.hists, NamedHistogram{Name: name, Hist: h})
}

// RegisterGauge adds a gauge: a callback sampled at scrape time, so the
// instrumented code pays nothing between scrapes. The callback must be
// safe to invoke from a scraper goroutine.
func (r *Registry) RegisterGauge(name string, fn func() float64) {
	r.gauges = append(r.gauges, namedGauge{name: name, fn: fn})
}

// Histograms returns the registered histograms in registration order.
func (r *Registry) Histograms() []NamedHistogram { return r.hists }

// GaugeValues samples every registered gauge now, in registration order.
func (r *Registry) GaugeValues() []Sample {
	out := make([]Sample, len(r.gauges))
	for i, g := range r.gauges {
		out[i] = Sample{Name: g.name, Value: g.fn()}
	}
	return out
}

// Groups returns the registered prefixes in registration order.
func (r *Registry) Groups() []string {
	out := make([]string, len(r.groups))
	for i, g := range r.groups {
		out[i] = g.prefix
	}
	return out
}

// Snapshot enumerates every registered counter.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	r.SnapshotInto(&s)
	return s
}

// SnapshotInto refills s in place, reusing its sample storage so repeated
// snapshotting (per-op deltas) stops allocating once the shape is known.
func (r *Registry) SnapshotInto(s *Snapshot) {
	s.samples = s.samples[:0]
	for gi := range r.groups {
		g := &r.groups[gi]
		if g.names == nil {
			g.c.CollectTelemetry(func(name string, value float64) {
				full := g.prefix + "/" + name
				g.names = append(g.names, full)
				s.samples = append(s.samples, Sample{Name: full, Value: value})
			})
			continue
		}
		i := 0
		g.c.CollectTelemetry(func(name string, value float64) {
			// Interned fast path; fall back to concatenation if a collector
			// ever emits more counters than its first enumeration did.
			if i < len(g.names) {
				s.samples = append(s.samples, Sample{Name: g.names[i], Value: value})
			} else {
				s.samples = append(s.samples, Sample{Name: g.prefix + "/" + name, Value: value})
			}
			i++
		})
	}
}

// Aggregate accumulates snapshots from many runs into one by-name total.
// Callers must Add in a deterministic order (the harness sorts runs by
// key first) so float summation order — and therefore the result — is
// identical between serial and parallel executions.
type Aggregate struct {
	values map[string]float64
	order  []string // first-seen order, for stable iteration before sort
}

// Add folds one snapshot into the aggregate.
func (a *Aggregate) Add(s Snapshot) {
	if a.values == nil {
		a.values = make(map[string]float64)
	}
	for _, sm := range s.samples {
		if _, ok := a.values[sm.Name]; !ok {
			a.order = append(a.order, sm.Name)
		}
		a.values[sm.Name] += sm.Value
	}
}

// Snapshot returns the aggregated counters sorted by name.
func (a *Aggregate) Snapshot() Snapshot {
	names := make([]string, len(a.order))
	copy(names, a.order)
	sort.Strings(names)
	out := Snapshot{samples: make([]Sample, len(names))}
	for i, n := range names {
		out.samples[i] = Sample{Name: n, Value: a.values[n]}
	}
	return out
}

// Attribution breaks an operation's cycles into the stall classes the
// paper's evaluation reasons about: pure FSM/compute work, supply-bound
// cycles (the memloader cannot feed the FSM faster), metadata-stack spill
// penalties, and blocking ADT-load stalls (the model's "ADT cache miss"
// analogue). Total is the operation's cycle count; the four classes
// partition it (FSM is the remainder).
type Attribution struct {
	Total   float64 `json:"total"`
	FSM     float64 `json:"fsm"`
	Supply  float64 `json:"supply"`
	Spill   float64 `json:"spill"`
	ADTMiss float64 `json:"adt_miss"`
}

// NewAttribution builds an Attribution from a total and the three stall
// classes, computing FSM as the (clamped) remainder.
func NewAttribution(total, supply, spill, adtMiss float64) Attribution {
	fsm := total - supply - spill - adtMiss
	if fsm < 0 {
		fsm = 0
	}
	return Attribution{Total: total, FSM: fsm, Supply: supply, Spill: spill, ADTMiss: adtMiss}
}

// OpTelemetry is the per-operation report a System attaches to a Result
// when per-op telemetry is enabled: the counter delta the operation caused
// and its cycle attribution.
type OpTelemetry struct {
	Counters    Snapshot
	Attribution Attribution
}

// Hub bundles the per-System telemetry state: the counter registry and
// the trace buffer, plus the per-op attachment switch. core.System owns
// exactly one Hub; pooled Systems reset it via Reset.
type Hub struct {
	Registry Registry
	Tracer   Tracer

	perOp    bool
	attrOnly bool
	prev     Snapshot // scratch for per-op deltas
}

// EnablePerOp toggles per-operation Result attachment (counter deltas and
// cycle attribution). Off by default; costs nothing when off.
func (h *Hub) EnablePerOp(on bool) { h.perOp = on }

// PerOpEnabled reports whether per-op attachment is on.
func (h *Hub) PerOpEnabled() bool { return h != nil && h.perOp }

// EnableAttribution toggles attribution-only Result attachment for the
// batch operations: Results carry a cycle Attribution (computed from unit
// stat deltas, a handful of field reads) but no counter snapshot delta.
// The serving data plane uses this instead of EnablePerOp — two full
// registry snapshots plus a positional delta per batch were a measured
// double-digit share of serving CPU, while the only per-batch consumer
// was the attribution. Implied by EnablePerOp; off by default.
func (h *Hub) EnableAttribution(on bool) { h.attrOnly = on }

// AttributionEnabled reports whether batch Results should carry a cycle
// attribution (with or without the counter delta).
func (h *Hub) AttributionEnabled() bool { return h != nil && (h.perOp || h.attrOnly) }

// OpBegin snapshots the registry before an operation when per-op
// telemetry is on, returning false (and doing nothing) otherwise.
func (h *Hub) OpBegin() bool {
	if !h.PerOpEnabled() {
		return false
	}
	h.Registry.SnapshotInto(&h.prev)
	return true
}

// OpEnd completes a per-op capture started by OpBegin, returning the
// counter delta attributed to the operation.
func (h *Hub) OpEnd(attr Attribution) *OpTelemetry {
	after := h.Registry.Snapshot()
	return &OpTelemetry{Counters: after.Delta(h.prev), Attribution: attr}
}

// Reset returns the Hub to its post-construction state: the trace buffer
// is emptied and disabled and per-op attachment is switched off. Counter
// registrations persist — the counters themselves live in the units,
// which the owning System resets separately (System.ResetAll zeroes every
// unit's accumulators, so a snapshot taken after ResetAll is all-zero).
func (h *Hub) Reset() {
	h.Tracer.Reset()
	h.perOp = false
	h.attrOnly = false
	h.prev.samples = h.prev.samples[:0]
}
