package telemetry

import (
	"reflect"
	"testing"
)

type fakeUnit struct {
	hits, misses float64
}

func (f *fakeUnit) CollectTelemetry(emit func(name string, value float64)) {
	emit("hits", f.hits)
	emit("misses", f.misses)
}

func TestRegistrySnapshotOrderAndNames(t *testing.T) {
	var r Registry
	a := &fakeUnit{hits: 1, misses: 2}
	b := &fakeUnit{hits: 3}
	r.Register("l1", a)
	r.Register("tlb", b)
	s := r.Snapshot()
	want := []Sample{
		{Name: "l1/hits", Value: 1},
		{Name: "l1/misses", Value: 2},
		{Name: "tlb/hits", Value: 3},
		{Name: "tlb/misses", Value: 0},
	}
	if !reflect.DeepEqual(s.Samples(), want) {
		t.Errorf("snapshot = %+v, want %+v", s.Samples(), want)
	}
	if got := r.Groups(); !reflect.DeepEqual(got, []string{"l1", "tlb"}) {
		t.Errorf("groups = %v", got)
	}
	if v, ok := s.Get("l1/misses"); !ok || v != 2 {
		t.Errorf("Get(l1/misses) = %v, %v", v, ok)
	}
	if _, ok := s.Get("nope"); ok {
		t.Error("Get(nope) should miss")
	}
}

func TestSnapshotDelta(t *testing.T) {
	var r Registry
	u := &fakeUnit{hits: 10, misses: 1}
	r.Register("u", u)
	before := r.Snapshot()
	u.hits, u.misses = 25, 4
	delta := r.Snapshot().Delta(before)
	if v, _ := delta.Get("u/hits"); v != 15 {
		t.Errorf("hits delta = %v", v)
	}
	if v, _ := delta.Get("u/misses"); v != 3 {
		t.Errorf("misses delta = %v", v)
	}

	// Misaligned shapes fall back to by-name matching.
	var other Registry
	other.Register("u", &fakeUnit{})
	odd := other.Snapshot()
	d2 := r.Snapshot().Delta(Snapshot{samples: odd.samples[:1]})
	if v, _ := d2.Get("u/misses"); v != 4 {
		t.Errorf("fallback misses delta = %v", v)
	}
}

func TestSnapshotZero(t *testing.T) {
	var r Registry
	u := &fakeUnit{}
	r.Register("u", u)
	if !r.Snapshot().Zero() {
		t.Error("fresh unit snapshot should be zero")
	}
	u.hits = 1
	if r.Snapshot().Zero() {
		t.Error("non-zero counter not detected")
	}
}

func TestAggregateSortedDeterminism(t *testing.T) {
	mk := func(name string, v float64) Snapshot {
		return Snapshot{samples: []Sample{{Name: name, Value: v}}}
	}
	var a, b Aggregate
	a.Add(mk("x", 1))
	a.Add(mk("y", 2))
	a.Add(mk("x", 3))
	b.Add(mk("y", 2))
	b.Add(mk("x", 3))
	b.Add(mk("x", 1))
	if !reflect.DeepEqual(a.Snapshot().Samples(), b.Snapshot().Samples()) {
		t.Errorf("aggregation order leaked into result: %+v vs %+v",
			a.Snapshot().Samples(), b.Snapshot().Samples())
	}
	s := a.Snapshot()
	if v, _ := s.Get("x"); v != 4 {
		t.Errorf("x total = %v", v)
	}
}

func TestAttributionPartition(t *testing.T) {
	at := NewAttribution(100, 20, 5, 10)
	if at.FSM != 65 {
		t.Errorf("FSM = %v, want 65", at.FSM)
	}
	if sum := at.FSM + at.Supply + at.Spill + at.ADTMiss; sum != at.Total {
		t.Errorf("classes sum to %v, total %v", sum, at.Total)
	}
	// Overcommitted stalls clamp FSM at zero rather than going negative.
	if at := NewAttribution(10, 8, 8, 8); at.FSM != 0 {
		t.Errorf("clamped FSM = %v", at.FSM)
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer enabled")
	}
	tr.Emit(Event{Unit: "x"}) // must not panic
	tr.Disable()
	tr.Reset()
	if ev := tr.Events(); ev != nil {
		t.Errorf("nil tracer events = %v", ev)
	}
	if ev := tr.TakeEvents(); ev != nil {
		t.Errorf("nil tracer take = %v", ev)
	}
}

func TestTracerLifecycle(t *testing.T) {
	tr := &Tracer{}
	tr.Emit(Event{Name: "dropped"})
	if len(tr.Events()) != 0 {
		t.Error("disabled tracer recorded an event")
	}
	tr.Enable()
	tr.Emit(Event{Name: "a", Cycle: 1})
	tr.Emit(Event{Name: "b", Cycle: 2})
	if len(tr.Events()) != 2 {
		t.Fatalf("events = %d", len(tr.Events()))
	}
	got := tr.TakeEvents()
	if len(got) != 2 || got[0].Name != "a" {
		t.Errorf("take = %+v", got)
	}
	if len(tr.Events()) != 0 {
		t.Error("take did not empty the buffer")
	}
	tr.Emit(Event{Name: "c"})
	tr.Reset()
	if tr.Enabled() || len(tr.Events()) != 0 {
		t.Error("reset did not disable and empty")
	}
}

func TestHubPerOpCapture(t *testing.T) {
	var h Hub
	u := &fakeUnit{}
	h.Registry.Register("u", u)
	if h.OpBegin() {
		t.Fatal("OpBegin should be a no-op while per-op is off")
	}
	h.EnablePerOp(true)
	if !h.OpBegin() {
		t.Fatal("OpBegin should arm after EnablePerOp")
	}
	u.hits = 7
	ot := h.OpEnd(NewAttribution(7, 0, 0, 0))
	if v, _ := ot.Counters.Get("u/hits"); v != 7 {
		t.Errorf("op delta = %v", v)
	}
	if ot.Attribution.Total != 7 {
		t.Errorf("attribution total = %v", ot.Attribution.Total)
	}
	h.Reset()
	if h.PerOpEnabled() || h.Tracer.Enabled() {
		t.Error("reset left per-op or tracer on")
	}
	if len(h.Registry.Groups()) != 1 {
		t.Error("reset must keep registrations")
	}
}
