package telemetry

// Event is one cycle-timestamped trace record — the common structured
// event the deserializer, serializer, message-operations unit, and RoCC
// command router all emit, replacing the deserializer's one-off
// TraceEvent hook. Cycle is the emitting unit's cumulative cycle counter
// at emission time (each unit is its own "waveform lane"); Dur is nonzero
// for span events covering a whole operation.
type Event struct {
	Unit  string  // "deser", "ser", "mops", "rocc"
	Name  string  // state or instruction name ("parseKey", "do_proto_deser", ...)
	Cycle float64 // cycle timestamp on the unit's own timeline
	Dur   float64 // span duration in cycles; 0 = instant event
	Depth int     // message nesting depth, where meaningful
	Field int32   // field number, where meaningful
	Pos   uint64  // stream position / address argument
	Note  string  // free-form detail (wire type, kind, element count)
}

// Tracer buffers Events for one System. The zero value is a valid,
// disabled tracer. All methods are nil-receiver safe so units can hold a
// possibly-nil *Tracer and emit unconditionally.
//
// Overhead contract: when disabled, Emit is a branch and nothing else —
// no allocation, no event construction cost beyond the caller's argument
// evaluation. Emit sites whose arguments themselves allocate (formatted
// notes) must check Enabled() first.
type Tracer struct {
	enabled bool
	events  []Event
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled }

// Enable starts recording.
func (t *Tracer) Enable() { t.enabled = true }

// Disable stops recording without discarding buffered events.
func (t *Tracer) Disable() {
	if t != nil {
		t.enabled = false
	}
}

// Emit appends one event when enabled.
func (t *Tracer) Emit(ev Event) {
	if !t.Enabled() {
		return
	}
	t.events = append(t.events, ev)
}

// Events returns the buffered events (callers must not modify; copy via
// TakeEvents to keep them past a Reset).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// TakeEvents returns a copy of the buffered events and empties the
// buffer, keeping its storage for reuse.
func (t *Tracer) TakeEvents() []Event {
	if t == nil || len(t.events) == 0 {
		return nil
	}
	out := make([]Event, len(t.events))
	copy(out, t.events)
	t.events = t.events[:0]
	return out
}

// Reset disables the tracer and empties the buffer, keeping storage.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.enabled = false
	t.events = t.events[:0]
}
