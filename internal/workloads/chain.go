package workloads

import (
	"fmt"
	"time"

	"protoacc/internal/serve"
	"protoacc/internal/telemetry"
)

// serviceNames are the chain's service roles in order; a chain of H hops
// crosses services[0..H] (frontend → kv → backend → store).
var serviceNames = []string{"frontend", "kv", "backend", "store"}

// MaxHops bounds the chain length to the named topology.
const MaxHops = 3

// ChainOptions configures one service-chain run.
type ChainOptions struct {
	// Dial builds clients; each worker gets one per hop (a hop is one
	// service-to-service edge with its own connection identity).
	Dial func() (serve.Doer, error)

	// Trace supplies the request stream; each record traverses the whole
	// chain.
	Trace *Trace

	// Catalog resolves records to payloads; nil selects
	// serve.DefaultCatalog.
	Catalog *serve.Catalog

	// Hops is the chain length in edges: 2 = frontend→kv→backend,
	// 3 adds backend→store (default 2).
	Hops int

	// Workers shard the trace into contiguous slices (default 1, the
	// deterministic mode).
	Workers int

	// Timeout is the per-request deadline (0 inherits the server default).
	Timeout time.Duration

	// Check byte-verifies every OK response against the hop's input.
	Check bool

	// Costs enables per-hop accel-vs-software savings. Nil skips them.
	Costs *CostTable

	// Observe, when non-nil, sees every hop response in shard order
	// (test hook for determinism checks).
	Observe func(worker, hop int, rec Record, resp serve.Response)
}

// ChainReport summarizes a chain run.
type ChainReport struct {
	Hops    []*HopStats         // per hop, in chain order
	E2E     telemetry.Histogram // per-record end-to-end latency (all hops)
	Elapsed time.Duration
	Records uint64 // trace records that completed every hop OK
}

// HopName labels hop i (0-based) as "frontend→kv" etc.
func HopName(i int) string {
	if i < 0 || i >= MaxHops {
		return fmt.Sprintf("hop%d", i)
	}
	return serviceNames[i] + "→" + serviceNames[i+1]
}

// RegisterHops registers the report's per-hop stats on a telemetry
// registry as serve/workload/hop<i>/ counter groups. Call after the run
// (the report's stats are final).
func (r *ChainReport) RegisterHops(reg *telemetry.Registry) {
	for i, h := range r.Hops {
		reg.Register(fmt.Sprintf("serve/workload/hop%d", i), h)
	}
}

// RPS returns chain traversals (all hops OK) per second.
func (r *ChainReport) RPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Records) / r.Elapsed.Seconds()
}

// RunChain replays the trace through an H-hop service chain. For each
// record and each hop, the sending service serializes the record's
// object through the accelerated path and the receiving service
// deserializes the resulting bytes — both directions of one RPC edge on
// the accelerator, the end-to-end shape RPCAcc evaluates. Responses are
// canonical bytes, so each hop's output feeds the next hop unchanged
// and the whole chain stays byte-verifiable.
func RunChain(opts ChainOptions) (*ChainReport, error) {
	if opts.Dial == nil {
		return nil, fmt.Errorf("workloads: chain needs a Dial function")
	}
	if opts.Trace == nil || len(opts.Trace.Records) == 0 {
		return nil, fmt.Errorf("workloads: chain needs a non-empty trace")
	}
	if opts.Catalog == nil {
		opts.Catalog = serve.DefaultCatalog()
	}
	if opts.Hops == 0 {
		opts.Hops = 2
	}
	if opts.Hops < 1 || opts.Hops > MaxHops {
		return nil, fmt.Errorf("workloads: -hops %d out of range [1, %d]", opts.Hops, MaxHops)
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.Workers > len(opts.Trace.Records) {
		opts.Workers = len(opts.Trace.Records)
	}
	for _, r := range opts.Trace.Records {
		if opts.Catalog.Lookup(r.Schema) == nil {
			return nil, fmt.Errorf("workloads: trace names schema %q not in catalog", r.Schema)
		}
	}

	// One Doer per (worker, hop): each hop edge keeps its own connection
	// and admission identity, like distinct services would.
	doers, err := dialWorkers(opts.Dial, opts.Workers*opts.Hops)
	if err != nil {
		return nil, err
	}
	defer closeAll(doers)

	shards := sliceRecords(len(opts.Trace.Records), opts.Workers)
	// stats[w][h]: per-worker, per-hop shards merged after the run.
	stats := make([][]HopStats, opts.Workers)
	e2e := make([]telemetry.Histogram, opts.Workers)
	completed := make([]uint64, opts.Workers)
	errs := make([]error, opts.Workers)
	done := make(chan int, opts.Workers)
	start := time.Now()
	for w := 0; w < opts.Workers; w++ {
		stats[w] = make([]HopStats, opts.Hops)
		go func(w int) {
			defer func() { done <- w }()
			for _, rec := range opts.Trace.Records[shards[w][0]:shards[w][1]] {
				entry := opts.Catalog.Lookup(rec.Schema)
				payload := entry.SamplePayload(rec.Sample)
				recStart := time.Now()
				allOK := true
				for h := 0; h < opts.Hops; h++ {
					client := doers[w*opts.Hops+h]
					st := &stats[w][h]
					hopStart := time.Now()
					ok := true
					// Sender side: serialize the object onto the wire.
					var softSer, softDeser float64
					if opts.Costs != nil {
						softSer = opts.Costs.Cycles(rec.Schema, rec.Sample, serve.OpSerialize)
						softDeser = opts.Costs.Cycles(rec.Schema, rec.Sample, serve.OpDeserialize)
					}
					serResp, err := client.Do(serve.Request{
						Op:      serve.OpSerialize,
						Schema:  rec.Schema,
						Timeout: opts.Timeout,
						Payload: payload,
					})
					st.note(serResp, err, payload, softSer, opts.Check)
					if err != nil {
						errs[w] = fmt.Errorf("workloads: chain worker %d hop %d: %w", w, h, err)
						return
					}
					if opts.Observe != nil {
						opts.Observe(w, h, rec, serResp)
					}
					if serResp.Status != serve.StatusOK {
						ok = false
					}
					// Receiver side: deserialize the bytes that arrived.
					// Responses are canonical, so the wire bytes equal the
					// hop input and the chain stays byte-stable end to end.
					wireBytes := payload
					if ok {
						wireBytes = serResp.Payload
					}
					deserResp, err := client.Do(serve.Request{
						Op:      serve.OpDeserialize,
						Schema:  rec.Schema,
						Timeout: opts.Timeout,
						Payload: wireBytes,
					})
					st.note(deserResp, err, wireBytes, softDeser, opts.Check)
					if err != nil {
						errs[w] = fmt.Errorf("workloads: chain worker %d hop %d: %w", w, h, err)
						return
					}
					if opts.Observe != nil {
						opts.Observe(w, h, rec, deserResp)
					}
					if deserResp.Status != serve.StatusOK {
						ok = false
					}
					if ok {
						st.Latency.Record(time.Since(hopStart))
					} else {
						allOK = false
					}
				}
				if allOK {
					e2e[w].Record(time.Since(recStart))
					completed[w]++
				}
			}
		}(w)
	}
	for i := 0; i < opts.Workers; i++ {
		<-done
	}
	rep := &ChainReport{Elapsed: time.Since(start)}
	for h := 0; h < opts.Hops; h++ {
		hs := &HopStats{Name: HopName(h)}
		for w := range stats {
			hs.merge(&stats[w][h])
		}
		rep.Hops = append(rep.Hops, hs)
	}
	for w := range e2e {
		if errs[w] != nil {
			return nil, errs[w]
		}
		rep.E2E.Merge(&e2e[w])
		rep.Records += completed[w]
	}
	return rep, nil
}
