package workloads

import (
	"bytes"
	"testing"

	"protoacc/internal/serve"
	"protoacc/internal/serve/elements"
)

// respRecord captures the determinism-relevant fields of one response in
// replay order.
type respRecord struct {
	status   serve.Status
	fellBack bool
	cycles   float64
	payload  []byte
}

func deterministicOptions(tiles int) serve.Options {
	o := testServerOptions()
	o.Tiles = tiles
	o.Routing = serve.RouteRoundRobin
	o.Workers = tiles
	// Chain on: the full element set must not perturb tile-count
	// independence (admission and cache sit before the router; the
	// breaker is event-driven off the same deterministic stream).
	o.Elements = elements.Config{Admission: true, Breaker: true, Cache: true,
		FillRate: 1e6, Burst: 1e6}
	return o
}

// replayOnce replays tr on a fresh server and returns the ordered
// response stream plus the tile-count-independent aggregated counters.
func replayOnce(t *testing.T, tiles int, tr *Trace) ([]respRecord, map[string]float64) {
	t.Helper()
	srv, err := serve.NewServer(deterministicOptions(tiles))
	if err != nil {
		t.Fatal(err)
	}
	var seen []respRecord
	_, err = Replay(ReplayOptions{
		Dial:  func() (serve.Doer, error) { return srv.InProc(), nil },
		Trace: tr,
		// One worker: the trace replays strictly in record order, so the
		// request stream — and under rr routing the batch→tile placement —
		// is a pure function of the trace.
		Workers: 1,
		Check:   true,
		Observe: func(w int, rec Record, resp serve.Response) {
			seen = append(seen, respRecord{resp.Status, resp.FellBack, resp.Cycles, resp.Payload})
		},
	})
	srv.Close()
	if err != nil {
		t.Fatal(err)
	}
	return seen, srv.AggregatedCounters()
}

// chainOnce runs the 2-hop chain on a fresh server, same contract.
func chainOnce(t *testing.T, tiles int, tr *Trace) ([]respRecord, map[string]float64) {
	t.Helper()
	srv, err := serve.NewServer(deterministicOptions(tiles))
	if err != nil {
		t.Fatal(err)
	}
	var seen []respRecord
	_, err = RunChain(ChainOptions{
		Dial:    func() (serve.Doer, error) { return srv.InProc(), nil },
		Trace:   tr,
		Hops:    2,
		Workers: 1,
		Check:   true,
		Observe: func(w, h int, rec Record, resp serve.Response) {
			seen = append(seen, respRecord{resp.Status, resp.FellBack, resp.Cycles, resp.Payload})
		},
	})
	srv.Close()
	if err != nil {
		t.Fatal(err)
	}
	return seen, srv.AggregatedCounters()
}

func compareRuns(t *testing.T, label string, ra, rb []respRecord, ca, cb map[string]float64) {
	t.Helper()
	if len(ra) != len(rb) {
		t.Fatalf("%s: response counts differ: 1-tile=%d 4-tile=%d", label, len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].status != rb[i].status || ra[i].fellBack != rb[i].fellBack {
			t.Errorf("%s response %d: status/fallback differ: 1-tile=%+v 4-tile=%+v", label, i, ra[i], rb[i])
		}
		if ra[i].cycles != rb[i].cycles {
			t.Errorf("%s response %d: cycles differ: 1-tile=%v 4-tile=%v", label, i, ra[i].cycles, rb[i].cycles)
		}
		if !bytes.Equal(ra[i].payload, rb[i].payload) {
			t.Errorf("%s response %d: payload bytes differ between tile counts", label, i)
		}
	}
	if len(ca) != len(cb) {
		t.Fatalf("%s: aggregated counter shapes differ: 1-tile=%d 4-tile=%d", label, len(ca), len(cb))
	}
	for name, va := range ca {
		vb, ok := cb[name]
		if !ok {
			t.Errorf("%s: counter %s present in 1-tile run, missing in 4-tile run", label, name)
			continue
		}
		if va != vb {
			t.Errorf("%s: counter %s: 1-tile=%v 4-tile=%v", label, name, va, vb)
		}
	}
}

// Trace-replay determinism (the serving layer's tile contract extended
// to workloads): the same seeded trace replayed with one worker in
// round-robin mode — element chain on — must produce bitwise-identical
// responses and identical aggregated serve/ counters on a 1-tile and a
// 4-tile server.
func TestTraceReplayTileDeterminism(t *testing.T) {
	tr, err := Synthesize(SynthOptions{Seed: 42, Records: 200, Keys: 32})
	if err != nil {
		t.Fatal(err)
	}
	ra, ca := replayOnce(t, 1, tr)
	rb, cb := replayOnce(t, 4, tr)
	compareRuns(t, "replay", ra, rb, ca, cb)
}

// The same contract for the service chain: hop traffic is still one
// deterministic request stream.
func TestChainTileDeterminism(t *testing.T) {
	tr, err := Synthesize(SynthOptions{Seed: 43, Records: 80, Keys: 16})
	if err != nil {
		t.Fatal(err)
	}
	ra, ca := chainOnce(t, 1, tr)
	rb, cb := chainOnce(t, 4, tr)
	compareRuns(t, "chain", ra, rb, ca, cb)
}
