package workloads

import (
	"fmt"
	"time"

	"protoacc/internal/serve"
)

// ReplayOptions configures one trace replay.
type ReplayOptions struct {
	// Dial builds one client per worker (TCP Conn or in-process client).
	Dial func() (serve.Doer, error)

	// Trace is the recorded sequence to replay.
	Trace *Trace

	// Catalog resolves each record's (schema, sample) to payload bytes;
	// nil selects serve.DefaultCatalog. It must be the catalog the trace
	// was synthesized against.
	Catalog *serve.Catalog

	// Workers shard the trace into contiguous slices replayed
	// concurrently (default 1: the whole trace in record order, the
	// deterministic mode).
	Workers int

	// Timeout is the per-request deadline (0 inherits the server default).
	Timeout time.Duration

	// Check byte-verifies every OK response against the request payload
	// (sample payloads are canonical, so both ops must echo them).
	Check bool

	// Costs attributes a calibrated Xeon software cost to each request,
	// enabling the accel-vs-software savings columns. Nil skips them.
	Costs *CostTable

	// Observe, when non-nil, is called with each response in replay
	// order within a worker's shard (test hook for determinism checks).
	Observe func(worker int, rec Record, resp serve.Response)
}

// ReplayReport summarizes a replay run.
type ReplayReport struct {
	Stats   HopStats // aggregated over workers
	Elapsed time.Duration
	Deser   uint64 // deserialize records replayed
	Ser     uint64 // serialize records replayed
}

// RPS returns completed (OK) requests per second.
func (r *ReplayReport) RPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Stats.OK) / r.Elapsed.Seconds()
}

// Replay drives the trace through the serving path and returns the
// merged report. Each worker owns one client and replays its contiguous
// shard in trace order.
func Replay(opts ReplayOptions) (*ReplayReport, error) {
	if opts.Dial == nil {
		return nil, fmt.Errorf("workloads: replay needs a Dial function")
	}
	if opts.Trace == nil || len(opts.Trace.Records) == 0 {
		return nil, fmt.Errorf("workloads: replay needs a non-empty trace")
	}
	if opts.Catalog == nil {
		opts.Catalog = serve.DefaultCatalog()
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.Workers > len(opts.Trace.Records) {
		opts.Workers = len(opts.Trace.Records)
	}
	for _, r := range opts.Trace.Records {
		if opts.Catalog.Lookup(r.Schema) == nil {
			return nil, fmt.Errorf("workloads: trace names schema %q not in catalog", r.Schema)
		}
	}

	doers, err := dialWorkers(opts.Dial, opts.Workers)
	if err != nil {
		return nil, err
	}
	defer closeAll(doers)

	shards := sliceRecords(len(opts.Trace.Records), opts.Workers)
	stats := make([]HopStats, opts.Workers)
	errs := make([]error, opts.Workers)
	done := make(chan int, opts.Workers)
	start := time.Now()
	for w := 0; w < opts.Workers; w++ {
		go func(w int) {
			defer func() { done <- w }()
			client := doers[w]
			st := &stats[w]
			for _, rec := range opts.Trace.Records[shards[w][0]:shards[w][1]] {
				entry := opts.Catalog.Lookup(rec.Schema)
				payload := entry.SamplePayload(rec.Sample)
				var soft float64
				if opts.Costs != nil {
					soft = opts.Costs.Cycles(rec.Schema, rec.Sample, rec.Op)
				}
				t0 := time.Now()
				resp, err := client.Do(serve.Request{
					Op:      rec.Op,
					Schema:  rec.Schema,
					Timeout: opts.Timeout,
					Payload: payload,
				})
				lat := time.Since(t0)
				if err == nil && resp.Status == serve.StatusOK {
					st.Latency.Record(lat)
				}
				st.note(resp, err, payload, soft, opts.Check)
				if err != nil {
					errs[w] = fmt.Errorf("workloads: replay worker %d: %w", w, err)
					return
				}
				if opts.Observe != nil {
					opts.Observe(w, rec, resp)
				}
			}
		}(w)
	}
	for i := 0; i < opts.Workers; i++ {
		<-done
	}
	rep := &ReplayReport{Elapsed: time.Since(start)}
	rep.Stats.Name = "trace"
	for w := range stats {
		if errs[w] != nil {
			return nil, errs[w]
		}
		rep.Stats.merge(&stats[w])
	}
	for _, r := range opts.Trace.Records {
		if r.Op == serve.OpSerialize {
			rep.Ser++
		} else {
			rep.Deser++
		}
	}
	return rep, nil
}
