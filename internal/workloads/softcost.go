package workloads

import (
	"fmt"

	"protoacc/internal/core"
	"protoacc/internal/pb/codec"
	"protoacc/internal/serve"
)

// CostTable holds calibrated Xeon software-codec cycle costs per
// (schema, sample payload, op), normalized to the accelerator's clock so
// they divide directly against the serving layer's per-request
// accelerator cycles (Response.Cycles): savings = software / accel is a
// wall-time ratio, the clock-fair comparison the bench harness uses.
type CostTable struct {
	XeonGHz  float64
	AccelGHz float64

	samples map[string]int
	cycles  map[costKey]float64
}

type costKey struct {
	schema string
	sample int
	op     serve.Op
}

// Cycles returns the accelerator-clock-normalized Xeon software cycles
// for one request, 0 if uncalibrated. The sample index wraps like
// Entry.SamplePayload.
func (t *CostTable) Cycles(schema string, sample int, op serve.Op) float64 {
	if t == nil {
		return 0
	}
	n := t.samples[schema]
	if n > 0 {
		sample = sample % n
	}
	return t.cycles[costKey{schema, sample, op}]
}

// CalibrateCosts measures every catalog sample payload under both ops on
// a Xeon software-codec System (core.KindXeon, the paper's server-class
// baseline) and returns the per-request cost table. Each measurement
// runs on batch-reset state — cold caches, rewound allocators — so costs
// are per-request, order-independent, and deterministic for a given
// catalog. Calibration uses small memory regions (the payloads are
// kilobytes, not the benchmark harness's hundreds of MB).
func CalibrateCosts(c *serve.Catalog) (*CostTable, error) {
	if c == nil {
		c = serve.DefaultCatalog()
	}
	cfg := core.DefaultConfig(core.KindXeon)
	const region = 16 << 20
	cfg.StaticSize, cfg.HeapSize, cfg.ArenaSize, cfg.OutSize = region, region, region, region
	sys := core.New(cfg)

	t := &CostTable{
		XeonGHz:  cfg.CPU.FrequencyGHz,
		AccelGHz: cfg.AccelFreqGHz,
		samples:  make(map[string]int),
		cycles:   make(map[costKey]float64),
	}
	// Xeon cycles → accelerator-clock cycles: a Xeon cycle is shorter, so
	// the same wall time is fewer accelerator cycles.
	norm := cfg.AccelFreqGHz / cfg.CPU.FrequencyGHz

	for _, name := range c.Names() {
		e := c.Lookup(name)
		if err := sys.LoadSchema(e.Type); err != nil {
			return nil, fmt.Errorf("workloads: calibrate %s: %v", name, err)
		}
		t.samples[name] = e.NumSamples()
		for i := 0; i < e.NumSamples(); i++ {
			payload := e.SamplePayload(i)

			sys.ResetBatch()
			addr, err := sys.WriteWire(payload)
			if err != nil {
				return nil, fmt.Errorf("workloads: calibrate %s/%d deser: %v", name, i, err)
			}
			res, _, err := sys.DeserializeBatch(e.Type, []core.WireRef{{Addr: addr, Len: uint64(len(payload))}})
			if err != nil {
				return nil, fmt.Errorf("workloads: calibrate %s/%d deser: %v", name, i, err)
			}
			t.cycles[costKey{name, i, serve.OpDeserialize}] = res.Cycles * norm

			sys.ResetBatch()
			msg, err := codec.Unmarshal(e.Type, payload)
			if err != nil {
				return nil, fmt.Errorf("workloads: calibrate %s/%d ser: %v", name, i, err)
			}
			obj, err := sys.MaterializeInput(msg)
			if err != nil {
				return nil, fmt.Errorf("workloads: calibrate %s/%d ser: %v", name, i, err)
			}
			res, _, err = sys.SerializeBatch(e.Type, []uint64{obj})
			if err != nil {
				return nil, fmt.Errorf("workloads: calibrate %s/%d ser: %v", name, i, err)
			}
			t.cycles[costKey{name, i, serve.OpSerialize}] = res.Cycles * norm
		}
	}
	return t, nil
}
