package workloads

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"protoacc/internal/fleet"
	"protoacc/internal/pb/schema"
	"protoacc/internal/serve"
)

// Record is one trace event: a request against a stable key. The key's
// (schema, sample) binding is part of the trace, so replay needs no
// state beyond the catalog the trace was synthesized against.
type Record struct {
	Key    uint64   // stable object identity (rank 0 = hottest)
	Schema string   // catalog entry name
	Sample int      // catalog sample-payload index for the key's object
	Op     serve.Op // deserialize (read path) or serialize (write path)
	Size   int      // encoded payload bytes (informational; pinned by tests)
}

// Trace is a recorded key/size/op sequence plus the seed that produced
// it (zero for traces recorded from live traffic).
type Trace struct {
	Seed    int64
	Records []Record
}

// SynthOptions shapes Synthesize.
type SynthOptions struct {
	Seed    int64 // RNG seed; same seed + options → identical trace
	Records int   // trace length (default 4096)
	Keys    int   // distinct keys (default 512)

	// ZipfS is the popularity skew over key ranks — the same hot-key
	// machinery as loadgen -skew (rank 0 hottest). Must be > 1;
	// default 1.2. 0 takes the default.
	ZipfS float64

	// Catalog supplies schemas and sample payloads; nil selects
	// serve.DefaultCatalog.
	Catalog *serve.Catalog

	// Sampler optionally shapes the trace from observed fleet statistics
	// instead of the published §3 aggregates: its message-size and
	// field-count shares replace Figure 3 / Figure 4a when it has
	// samples. An empty sampler falls back to the published data (its
	// share helpers return zeros, never NaNs).
	Sampler *fleet.Sampler
}

// deserShare is the fleet operation mix: the paper's fleet-wide cycle
// fractions for C++ deserialization vs serialization (§3.2) as a
// read/write split, ≈64% deserialize.
func deserShare() float64 {
	return fleet.FleetCyclesInCppDeser / (fleet.FleetCyclesInCppDeser + fleet.FleetCyclesInCppSer)
}

// sizeBucketIndex maps an encoded size onto the Figure 3 buckets.
func sizeBucketIndex(n uint64) int {
	for i, b := range fleet.SizeBucketBounds {
		if n >= b[0] && (b[1] == fleet.Unbounded || n <= b[1]) {
			return i
		}
	}
	return len(fleet.SizeBucketBounds) - 1
}

// typeKeys walks a schema (sub-messages included, matching the Figure 4a
// accounting) and returns the field-type slices it contains.
func typeKeys(t *schema.Message, depth int) []fleet.TypeKey {
	if t == nil || depth > 8 {
		return nil
	}
	var out []fleet.TypeKey
	for _, f := range t.Fields {
		if f.Kind == schema.KindMessage {
			out = append(out, typeKeys(f.Message, depth+1)...)
			continue
		}
		out = append(out, fleet.TypeKey{Kind: f.Kind, Repeated: f.Repeated()})
	}
	return out
}

// schemaWeights scores each catalog schema by the summed fleet share of
// its field-type slices (Figure 4a, or the sampler's observed version),
// so schemas whose shapes dominate the fleet dominate the trace. A
// schema whose types carry zero share still gets a small floor so every
// hosted schema appears.
func schemaWeights(names []string, c *serve.Catalog, s *fleet.Sampler) []float64 {
	shares := make(map[fleet.TypeKey]float64)
	if s != nil {
		shares = s.FieldCountShares() // empty map on an empty sampler
	}
	if len(shares) == 0 {
		for _, ft := range fleet.FieldsByType() {
			shares[fleet.TypeKey{Kind: ft.Kind, Repeated: ft.Repeated}] += ft.Share
		}
	}
	out := make([]float64, len(names))
	var total float64
	for i, name := range names {
		for _, k := range typeKeys(c.Lookup(name).Type, 0) {
			out[i] += shares[k]
		}
		out[i] += 0.01 // floor: host every schema
		total += out[i]
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// sizeShares returns the Figure 3 message-size shares, preferring the
// sampler's observed distribution when it has samples.
func sizeShares(s *fleet.Sampler) []float64 {
	if s != nil {
		obs := s.MessageSizeShares()
		var total float64
		for _, v := range obs {
			total += v
		}
		if total > 0 {
			return obs
		}
	}
	out := make([]float64, len(fleet.SizeBucketBounds))
	for i, b := range fleet.MessageSizes() {
		out[i] = b.Share
	}
	return out
}

// weightedDraw picks an index from weights (assumed to sum to ~1).
func weightedDraw(rng *rand.Rand, weights []float64) int {
	x := rng.Float64()
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Synthesize builds a deterministic fleet-shaped trace. Keys get a
// Zipf popularity ranking; each key is bound at first appearance to a
// (schema, sample) pair — the schema drawn from the fleet field-type
// mix, the sample drawn from the fleet message-size distribution over
// the schema's sample payloads (nearest non-empty bucket when a schema
// has no payload in the drawn bucket); each record's op follows the
// fleet deserialize/serialize cycle split.
func Synthesize(opts SynthOptions) (*Trace, error) {
	if opts.Records <= 0 {
		opts.Records = 4096
	}
	if opts.Keys <= 0 {
		opts.Keys = 512
	}
	if opts.ZipfS == 0 {
		opts.ZipfS = 1.2
	}
	if opts.ZipfS <= 1 {
		return nil, fmt.Errorf("workloads: zipf s %g invalid (needs s > 1)", opts.ZipfS)
	}
	if opts.Catalog == nil {
		opts.Catalog = serve.DefaultCatalog()
	}
	names := opts.Catalog.Names()
	if len(names) == 0 {
		return nil, fmt.Errorf("workloads: empty catalog")
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	zipf := rand.NewZipf(rng, opts.ZipfS, 1, uint64(opts.Keys-1))
	if zipf == nil {
		return nil, fmt.Errorf("workloads: rand.NewZipf rejected s=%g imax=%d", opts.ZipfS, opts.Keys-1)
	}

	weights := schemaWeights(names, opts.Catalog, opts.Sampler)
	sizes := sizeShares(opts.Sampler)
	dShare := deserShare()

	// Precompute, per schema, which sample payloads land in which Figure 3
	// size bucket, so a drawn (schema, bucket) maps to a concrete payload.
	buckets := make(map[string][][]int, len(names))
	for _, name := range names {
		e := opts.Catalog.Lookup(name)
		bs := make([][]int, len(fleet.SizeBucketBounds))
		for i := 0; i < e.NumSamples(); i++ {
			bi := sizeBucketIndex(uint64(len(e.SamplePayload(i))))
			bs[bi] = append(bs[bi], i)
		}
		buckets[name] = bs
	}

	type binding struct {
		schema string
		sample int
	}
	bound := make(map[uint64]binding, opts.Keys)

	tr := &Trace{Seed: opts.Seed, Records: make([]Record, 0, opts.Records)}
	for n := 0; n < opts.Records; n++ {
		key := zipf.Uint64()
		b, ok := bound[key]
		if !ok {
			name := names[weightedDraw(rng, weights)]
			bs := buckets[name]
			bi := weightedDraw(rng, sizes)
			// Nearest non-empty bucket: schemas rarely cover all eight
			// Figure 3 buckets, so widen symmetrically until one hits.
			idxs := bs[bi]
			for d := 1; len(idxs) == 0 && d < len(bs); d++ {
				if bi-d >= 0 && len(bs[bi-d]) > 0 {
					idxs = bs[bi-d]
				} else if bi+d < len(bs) && len(bs[bi+d]) > 0 {
					idxs = bs[bi+d]
				}
			}
			if len(idxs) == 0 {
				return nil, fmt.Errorf("workloads: schema %q has no sample payloads", name)
			}
			b = binding{schema: name, sample: idxs[rng.Intn(len(idxs))]}
			bound[key] = b
		}
		op := serve.OpSerialize
		if rng.Float64() < dShare {
			op = serve.OpDeserialize
		}
		e := opts.Catalog.Lookup(b.schema)
		tr.Records = append(tr.Records, Record{
			Key:    key,
			Schema: b.schema,
			Sample: b.sample,
			Op:     op,
			Size:   len(e.SamplePayload(b.sample)),
		})
	}
	return tr, nil
}

// traceHeader is the text-format magic line.
const traceHeader = "protoacc-trace/v1"

// WriteTo writes the trace in its text format: a header line
// "protoacc-trace/v1 seed=<n>" then one "key schema sample op size"
// line per record. The format round-trips through ReadTrace.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	c, err := fmt.Fprintf(bw, "%s seed=%d\n", traceHeader, t.Seed)
	n += int64(c)
	if err != nil {
		return n, err
	}
	for _, r := range t.Records {
		c, err := fmt.Fprintf(bw, "%d %s %d %s %d\n", r.Key, r.Schema, r.Sample, r.Op, r.Size)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadTrace parses the text format WriteTo emits.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("workloads: empty trace")
	}
	head := strings.Fields(sc.Text())
	if len(head) != 2 || head[0] != traceHeader || !strings.HasPrefix(head[1], "seed=") {
		return nil, fmt.Errorf("workloads: bad trace header %q", sc.Text())
	}
	seed, err := strconv.ParseInt(strings.TrimPrefix(head[1], "seed="), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("workloads: bad trace seed: %v", err)
	}
	tr := &Trace{Seed: seed}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		f := strings.Fields(text)
		if len(f) != 5 {
			return nil, fmt.Errorf("workloads: trace line %d: want 5 fields, got %d", line, len(f))
		}
		key, err := strconv.ParseUint(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workloads: trace line %d: key: %v", line, err)
		}
		sample, err := strconv.Atoi(f[2])
		if err != nil || sample < 0 {
			return nil, fmt.Errorf("workloads: trace line %d: bad sample %q", line, f[2])
		}
		var op serve.Op
		switch f[3] {
		case "deser":
			op = serve.OpDeserialize
		case "ser":
			op = serve.OpSerialize
		default:
			return nil, fmt.Errorf("workloads: trace line %d: bad op %q", line, f[3])
		}
		size, err := strconv.Atoi(f[4])
		if err != nil || size < 0 {
			return nil, fmt.Errorf("workloads: trace line %d: bad size %q", line, f[4])
		}
		tr.Records = append(tr.Records, Record{Key: key, Schema: f[1], Sample: sample, Op: op, Size: size})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workloads: reading trace: %v", err)
	}
	return tr, nil
}
