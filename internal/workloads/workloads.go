// Package workloads turns the fleet study (internal/fleet, paper §3)
// into a first-class traffic generator: instead of loadgen's synthetic
// per-(schema, op) passes, it synthesizes and replays application-shaped
// traces — fleet-shaped message sizes, fleet-shaped schema and operation
// mixes, Zipf popularity skew over a stable key space — and models a
// small service chain (frontend → kv → backend) where every hop's
// serialize and deserialize runs on the accelerated serving path.
//
// Three pieces:
//
//   - Trace synthesis (Synthesize): a deterministic, seeded key/size/op
//     trace. Each key is assigned a schema and a sample payload once,
//     with the schema mix weighted by the fleet field-type distribution
//     (Figure 4a) and the payload size drawn from the fleet message-size
//     distribution (Figure 3, or a live fleet.Sampler's observed
//     shares); record keys follow a Zipf popularity ranking, the same
//     hot-key machinery loadgen's -skew mode uses. Traces round-trip
//     through a text format, so a recorded trace can be replayed later
//     or elsewhere.
//   - Trace replay (Replay): drives a serve.Doer — the in-process
//     client or a live protoaccd connection — through the trace in
//     record order, byte-verifying responses and attributing accelerator
//     cycles per request.
//   - Service chain (RunChain): each trace record crosses 2–3 hops; a
//     hop is one service-to-service edge whose sender serializes and
//     receiver deserializes on the accelerated path. Per-hop latency,
//     per-hop accelerator-vs-software cycle savings (against a Xeon
//     software-codec calibration, CostTable), and end-to-end
//     percentiles are reported, with each hop exporting its own
//     serve/workload/hop<i>/ telemetry group.
//
// Determinism mirrors the serving layer's contracts: with one worker and
// round-robin routing, a trace replay or chain run produces
// bitwise-identical responses and identical aggregated serve/ counters
// on a 1-tile and an N-tile server (see the package tests).
package workloads

import (
	"fmt"
	"sync"
	"time"

	"protoacc/internal/serve"
	"protoacc/internal/telemetry"
)

// HopStats accumulates one hop's (or the whole trace replay's) traffic
// counters. It structurally satisfies telemetry.Collector, so each hop
// registers as its own serve/workload/hop<i>/ counter group.
type HopStats struct {
	mu sync.Mutex

	Name string // topology label, e.g. "frontend→kv"

	Requests  uint64 // accelerated serving calls issued (ser + deser)
	OK        uint64
	Errors    uint64 // transport errors and error statuses
	Rejected  uint64 // shed / throttled / deadline / bad
	FellBack  uint64 // OK responses served by a software path
	CheckFail uint64 // responses that diverged from the canonical bytes

	BytesIn  uint64 // payload bytes sent into this hop
	BytesOut uint64 // payload bytes received from OK responses

	AccelCycles float64 // accelerator cycles attributed by the server
	SoftCycles  float64 // Xeon software-codec cycles for the same work (calibrated)
	SoftReqs    uint64  // requests with a software calibration entry

	// Latency is the hop's per-edge latency distribution (the ser+deser
	// pair for a chain hop; per-request for trace replay).
	Latency telemetry.Histogram
}

// note records one accelerated serving call's outcome on the hop.
func (h *HopStats) note(resp serve.Response, err error, payload []byte, soft float64, check bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.Requests++
	h.BytesIn += uint64(len(payload))
	if err != nil {
		h.Errors++
		return
	}
	switch resp.Status {
	case serve.StatusOK:
		h.OK++
		h.BytesOut += uint64(len(resp.Payload))
		if resp.FellBack {
			h.FellBack++
		} else {
			// Cycle savings compare accelerator-path work only: a
			// fallback's Cycles mix clock domains (or are zero), so both
			// sides of the ratio skip it.
			h.AccelCycles += resp.Cycles
			if soft > 0 {
				h.SoftCycles += soft
				h.SoftReqs++
			}
		}
		if check && !bytesEqual(resp.Payload, payload) {
			h.CheckFail++
		}
	case serve.StatusShed, serve.StatusThrottled, serve.StatusDeadline, serve.StatusBadRequest:
		h.Rejected++
	default:
		h.Errors++
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// merge folds o into h (used to gather per-worker shards).
func (h *HopStats) merge(o *HopStats) {
	h.Requests += o.Requests
	h.OK += o.OK
	h.Errors += o.Errors
	h.Rejected += o.Rejected
	h.FellBack += o.FellBack
	h.CheckFail += o.CheckFail
	h.BytesIn += o.BytesIn
	h.BytesOut += o.BytesOut
	h.AccelCycles += o.AccelCycles
	h.SoftCycles += o.SoftCycles
	h.SoftReqs += o.SoftReqs
	h.Latency.Merge(&o.Latency)
}

// Savings returns the hop's accelerator-vs-software cycle savings as a
// time ratio: calibrated Xeon software cycles (normalized to the
// accelerator clock) divided by the accelerator cycles spent on the same
// requests. 0 means no calibrated accelerator-path requests completed.
func (h *HopStats) Savings() float64 {
	if h.AccelCycles <= 0 || h.SoftCycles <= 0 {
		return 0
	}
	return h.SoftCycles / h.AccelCycles
}

// CollectTelemetry emits the hop's counter group (structurally a
// telemetry.Collector; registered as serve/workload/hop<i>/ or
// serve/workload/trace/).
func (h *HopStats) CollectTelemetry(emit func(name string, value float64)) {
	emit("requests", float64(h.Requests))
	emit("ok", float64(h.OK))
	emit("errors", float64(h.Errors))
	emit("rejected", float64(h.Rejected))
	emit("fellback", float64(h.FellBack))
	emit("check_failures", float64(h.CheckFail))
	emit("bytes/in", float64(h.BytesIn))
	emit("bytes/out", float64(h.BytesOut))
	emit("cycles/accel", h.AccelCycles)
	emit("cycles/software", h.SoftCycles)
	emit("cycles/calibrated_requests", float64(h.SoftReqs))
}

// dialWorkers builds one Doer per worker, closing any partial set on
// failure.
func dialWorkers(dial func() (serve.Doer, error), n int) ([]serve.Doer, error) {
	out := make([]serve.Doer, 0, n)
	for i := 0; i < n; i++ {
		d, err := dial()
		if err != nil {
			for _, c := range out {
				c.Close()
			}
			return nil, fmt.Errorf("workloads: dial worker %d: %w", i, err)
		}
		out = append(out, d)
	}
	return out, nil
}

func closeAll(doers []serve.Doer) {
	for _, d := range doers {
		d.Close()
	}
}

// sliceRecords splits n records into w contiguous shards (the replay
// order inside a shard is the trace order, so a single worker replays
// the trace exactly).
func sliceRecords(n, w int) [][2]int {
	out := make([][2]int, 0, w)
	per := n / w
	rem := n % w
	start := 0
	for i := 0; i < w; i++ {
		size := per
		if i < rem {
			size++
		}
		out = append(out, [2]int{start, start + size})
		start += size
	}
	return out
}

// quantileDur is a tiny readability helper for report code.
func quantileDur(h *telemetry.Histogram, q float64) time.Duration {
	return h.Quantile(q)
}
