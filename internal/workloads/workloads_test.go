package workloads

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"protoacc/internal/fleet"
	"protoacc/internal/serve"
	"protoacc/internal/telemetry"
)

func testServerOptions() serve.Options {
	return serve.Options{
		MaxBatch:    4,
		QueueDepth:  64,
		Workers:     2,
		MaxPayload:  8 << 10,
		BatchWindow: 100 * time.Microsecond,
		Deadline:    time.Minute,
	}
}

// Same seed and options must synthesize the identical trace; different
// seeds must not.
func TestSynthesizeDeterministic(t *testing.T) {
	a, err := Synthesize(SynthOptions{Seed: 7, Records: 512, Keys: 64})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(SynthOptions{Seed: 7, Records: 512, Keys: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	c, err := Synthesize(SynthOptions{Seed: 8, Records: 512, Keys: 64})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Records, c.Records) {
		t.Fatal("different seeds produced identical traces")
	}
}

// The synthesized trace must be fleet-shaped: every catalog schema
// appears, the op mix tracks the §3.2 deserialize/serialize cycle split,
// keys are Zipf-skewed (rank 0 dominates), and each record's Size equals
// its resolved payload length with the same (schema, sample) on every
// occurrence of a key.
func TestSynthesizeFleetShape(t *testing.T) {
	cat := serve.DefaultCatalog()
	tr, err := Synthesize(SynthOptions{Seed: 1, Records: 8192, Keys: 128, Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	schemas := map[string]int{}
	keyBind := map[uint64]Record{}
	var deser, keyZero int
	for _, r := range tr.Records {
		schemas[r.Schema]++
		if r.Op == serve.OpDeserialize {
			deser++
		}
		if r.Key == 0 {
			keyZero++
		}
		if got := len(cat.Lookup(r.Schema).SamplePayload(r.Sample)); got != r.Size {
			t.Fatalf("record size %d != payload length %d", r.Size, got)
		}
		if prev, ok := keyBind[r.Key]; ok {
			if prev.Schema != r.Schema || prev.Sample != r.Sample {
				t.Fatalf("key %d re-bound: %v then %v", r.Key, prev, r)
			}
		} else {
			keyBind[r.Key] = r
		}
	}
	for _, name := range cat.Names() {
		if schemas[name] == 0 {
			t.Errorf("schema %q never appears in an 8192-record trace", name)
		}
	}
	want := fleet.FleetCyclesInCppDeser / (fleet.FleetCyclesInCppDeser + fleet.FleetCyclesInCppSer)
	got := float64(deser) / float64(len(tr.Records))
	if got < want-0.05 || got > want+0.05 {
		t.Errorf("deserialize share %.3f, want %.3f±0.05 (fleet op mix)", got, want)
	}
	if float64(keyZero)/float64(len(tr.Records)) < 0.2 {
		t.Errorf("hottest key holds %.1f%% of records; Zipf(1.2) skew should concentrate >20%%",
			100*float64(keyZero)/float64(len(tr.Records)))
	}
}

// An empty fleet.Sampler must shape exactly like the published data:
// its share helpers return zeros (never NaNs), and Synthesize falls back
// to Figures 3/4a.
func TestSynthesizeEmptySamplerFallsBack(t *testing.T) {
	base, err := Synthesize(SynthOptions{Seed: 3, Records: 256, Keys: 32})
	if err != nil {
		t.Fatal(err)
	}
	withEmpty, err := Synthesize(SynthOptions{Seed: 3, Records: 256, Keys: 32, Sampler: fleet.NewSampler()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Records, withEmpty.Records) {
		t.Fatal("an empty sampler changed the synthesized trace (zero-sample shares leaked)")
	}
}

// WriteTo/ReadTrace must round-trip exactly.
func TestTraceRoundTrip(t *testing.T) {
	tr, err := Synthesize(SynthOptions{Seed: 11, Records: 300, Keys: 40})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "protoacc-trace/v1 seed=11\n") {
		t.Fatalf("bad header: %q", buf.String()[:40])
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatal("trace did not round-trip through the text format")
	}
}

func TestReadTraceRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",
		"not-a-trace seed=1\n",
		"protoacc-trace/v1 seed=x\n",
		"protoacc-trace/v1 seed=1\n1 varint 0 deser\n",        // 4 fields
		"protoacc-trace/v1 seed=1\n1 varint 0 merge 10\n",     // bad op
		"protoacc-trace/v1 seed=1\n1 varint -2 deser 10\n",    // negative sample
		"protoacc-trace/v1 seed=1\nx varint 0 deser 10\n",     // bad key
		"protoacc-trace/v1 seed=1\n1 varint 0 deser banana\n", // bad size
	} {
		if _, err := ReadTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadTrace accepted malformed input %q", bad)
		}
	}
}

// The Xeon cost table must cover every (schema, sample, op) with a
// positive cost, and lookups must wrap sample indices like
// Entry.SamplePayload.
func TestCalibrateCosts(t *testing.T) {
	cat := serve.DefaultCatalog()
	costs, err := CalibrateCosts(cat)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range cat.Names() {
		e := cat.Lookup(name)
		for i := 0; i < e.NumSamples(); i++ {
			for _, op := range []serve.Op{serve.OpDeserialize, serve.OpSerialize} {
				if c := costs.Cycles(name, i, op); c <= 0 {
					t.Fatalf("%s/%d %v: cost %v, want > 0", name, i, op, c)
				}
			}
		}
		if a, b := costs.Cycles(name, 1, serve.OpDeserialize), costs.Cycles(name, 1+e.NumSamples(), serve.OpDeserialize); a != b {
			t.Errorf("%s: sample index does not wrap: [1]=%v [1+n]=%v", name, a, b)
		}
	}
	if costs.Cycles("no-such-schema", 0, serve.OpDeserialize) != 0 {
		t.Error("unknown schema should cost 0 (uncalibrated)")
	}
	var nilTable *CostTable
	if nilTable.Cycles("varint", 0, serve.OpDeserialize) != 0 {
		t.Error("nil table should cost 0")
	}
}

// Replay against an in-process server: every response byte-verified,
// counters consistent, accelerator savings positive under the Xeon cost
// table (the paper's headline: hardware beats the software codec).
func TestReplayInProcess(t *testing.T) {
	tr, err := Synthesize(SynthOptions{Seed: 5, Records: 160, Keys: 24})
	if err != nil {
		t.Fatal(err)
	}
	costs, err := CalibrateCosts(nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(testServerOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rep, err := Replay(ReplayOptions{
		Dial:  func() (serve.Doer, error) { return srv.InProc(), nil },
		Trace: tr, Workers: 2, Check: true, Costs: costs,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := &rep.Stats
	if st.Requests != uint64(len(tr.Records)) {
		t.Fatalf("replayed %d of %d records", st.Requests, len(tr.Records))
	}
	if st.OK != st.Requests {
		t.Fatalf("%d of %d requests not OK (errors=%d rejected=%d)", st.Requests-st.OK, st.Requests, st.Errors, st.Rejected)
	}
	if st.CheckFail != 0 {
		t.Fatalf("%d byte-verification failures", st.CheckFail)
	}
	if rep.Deser+rep.Ser != st.Requests {
		t.Errorf("op split %d+%d != %d", rep.Deser, rep.Ser, st.Requests)
	}
	if st.Latency.Count() != st.OK {
		t.Errorf("latency samples %d != OK %d", st.Latency.Count(), st.OK)
	}
	if s := st.Savings(); s <= 1 {
		t.Errorf("accel-vs-software savings %.2fx, want > 1x (accel=%.0f soft=%.0f over %d reqs)",
			s, st.AccelCycles, st.SoftCycles, st.SoftReqs)
	}
}

// A 2-hop chain run: per-hop counters filled, hop latency and e2e
// histograms populated, telemetry groups emitted under
// serve/workload/hop<i>/.
func TestRunChainInProcess(t *testing.T) {
	tr, err := Synthesize(SynthOptions{Seed: 6, Records: 96, Keys: 16})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(testServerOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rep, err := RunChain(ChainOptions{
		Dial:  func() (serve.Doer, error) { return srv.InProc(), nil },
		Trace: tr, Hops: 2, Workers: 2, Check: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Hops) != 2 {
		t.Fatalf("got %d hops, want 2", len(rep.Hops))
	}
	if rep.Records != uint64(len(tr.Records)) {
		t.Fatalf("%d of %d records completed the chain", rep.Records, len(tr.Records))
	}
	if rep.E2E.Count() != rep.Records {
		t.Errorf("e2e samples %d != completed records %d", rep.E2E.Count(), rep.Records)
	}
	for i, h := range rep.Hops {
		// Each hop runs one serialize + one deserialize per record.
		if want := uint64(2 * len(tr.Records)); h.Requests != want {
			t.Errorf("hop %d: %d requests, want %d", i, h.Requests, want)
		}
		if h.OK != h.Requests || h.CheckFail != 0 {
			t.Errorf("hop %d: ok=%d/%d checkfail=%d", i, h.OK, h.Requests, h.CheckFail)
		}
		if h.Latency.Count() == 0 {
			t.Errorf("hop %d: empty latency histogram", i)
		}
		if h.Name != HopName(i) {
			t.Errorf("hop %d named %q, want %q", i, h.Name, HopName(i))
		}
	}
	reg := &telemetry.Registry{}
	rep.RegisterHops(reg)
	snap := reg.Snapshot()
	for i := range rep.Hops {
		name := "serve/workload/hop" + string(rune('0'+i)) + "/requests"
		v, ok := snap.Get(name)
		if !ok || v == 0 {
			t.Errorf("counter %s missing or zero (got %v, present=%v)", name, v, ok)
		}
	}
}

// HopName labels the fixed topology.
func TestHopNames(t *testing.T) {
	want := []string{"frontend→kv", "kv→backend", "backend→store"}
	for i, w := range want {
		if got := HopName(i); got != w {
			t.Errorf("HopName(%d) = %q, want %q", i, got, w)
		}
	}
}

// Chain rejects out-of-range hop counts.
func TestRunChainRejectsBadHops(t *testing.T) {
	tr := &Trace{Records: []Record{{Schema: "varint", Op: serve.OpDeserialize}}}
	_, err := RunChain(ChainOptions{
		Dial:  func() (serve.Doer, error) { return nil, nil },
		Trace: tr, Hops: MaxHops + 1,
	})
	if err == nil {
		t.Fatal("RunChain accepted hops beyond the topology")
	}
}
